//! Primitive layers: [`Linear`], [`Conv2d`], [`GroupNorm`], [`LayerNorm`],
//! and the quantization tap machinery.

use fpdq_autograd::{Param, Tape, Var};
use fpdq_tensor::conv::Conv2dSpec;
use fpdq_tensor::Tensor;
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// An activation fake-quantizer installed into a layer's [`Tap`].
///
/// Implemented by `fpdq-core`'s searched FP/INT quantizers; the nn crate
/// only knows the function shape.
pub type ActQuantFn = Rc<dyn Fn(&Tensor) -> Tensor>;

/// A packed-weight forward override: maps the layer's (already tapped)
/// input to its output using a bit-packed weight representation.
///
/// Implemented by `fpdq-kernels`' dequantize-on-the-fly GEMM/conv kernels;
/// the nn crate only knows the function shape. Installing one switches the
/// layer's inference forward from the dense fake-quantized path to real
/// packed execution.
pub type PackedForwardFn = Rc<dyn Fn(&Tensor) -> Tensor>;

/// Slot on a quantizable layer holding an optional [`PackedForwardFn`],
/// plus the tap's suspended activation quantizer when the packed forward
/// has *fused* activation quantization (the kernel quantizes inside its
/// tile loop, so the tap must stop pre-quantizing — but must get its
/// closure back when the layer reverts to dense execution).
#[derive(Clone, Default)]
pub struct PackedSlot {
    forward: RefCell<Option<PackedForwardFn>>,
    suspended_act: RefCell<Option<ActQuantFn>>,
}

impl std::fmt::Debug for PackedSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedSlot")
            .field("installed", &self.forward.borrow().is_some())
            .field("suspended_act", &self.suspended_act.borrow().is_some())
            .finish()
    }
}

impl PackedSlot {
    /// Installs a packed-execution override.
    pub fn install(&self, f: PackedForwardFn) {
        *self.forward.borrow_mut() = Some(f);
    }

    /// Removes the override (reverting to dense execution) and returns
    /// the suspended tap activation quantizer, if the fused forward had
    /// parked one. The caller owns the restore: put the closure back into
    /// `tap.act_quant` (as `fpdq-kernels::unpack_unet` does) — dropping
    /// it would leave the dense path running *without* activation
    /// quantization, which is why the result must not be ignored.
    #[must_use = "reinstall the suspended act quantizer into the tap, or dense execution loses it"]
    pub fn clear(&self) -> Option<ActQuantFn> {
        *self.forward.borrow_mut() = None;
        self.take_suspended_act()
    }

    /// Parks the tap's activation quantizer while a fused forward owns
    /// quantization (see [`Self::take_suspended_act`]).
    pub fn suspend_act(&self, f: ActQuantFn) {
        *self.suspended_act.borrow_mut() = Some(f);
    }

    /// Returns (and clears) the suspended activation quantizer so the
    /// unpacking driver can restore it into the tap.
    pub fn take_suspended_act(&self) -> Option<ActQuantFn> {
        self.suspended_act.borrow_mut().take()
    }

    /// Whether an override is installed.
    pub fn is_installed(&self) -> bool {
        self.forward.borrow().is_some()
    }

    /// Runs the override on a tapped input, if installed.
    pub fn run(&self, x: &Tensor) -> Option<Tensor> {
        self.forward.borrow().as_ref().map(|f| f(x))
    }
}

/// Which kind of quantizable layer (the paper quantizes convolution and
/// linear layers, leaving normalisation and SiLU in full precision, §VI-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// A 2-D convolution.
    Conv,
    /// A fully connected layer (including attention projections).
    Linear,
}

/// Post-training-quantization hooks on a quantizable layer's *input*.
///
/// * `capture` — when set, inference pushes a clone of each input here
///   (used to build the paper's initialization/calibration datasets).
/// * `act_quant` — fake-quantizes the input (whole tensor, or the trunk
///   half when `split` is set).
/// * `act_quant_skip` — independent quantizer for the skip-connection half
///   of a concatenated input (Q-Diffusion's split quantization, §VI-A).
#[derive(Clone, Default)]
pub struct Tap {
    /// Calibration capture buffer.
    pub capture: Option<Rc<RefCell<Vec<Tensor>>>>,
    /// Input activation quantizer (trunk half when split).
    pub act_quant: Option<ActQuantFn>,
    /// Skip-half activation quantizer (only used when the layer consumes a
    /// concatenation and a split point is configured).
    pub act_quant_skip: Option<ActQuantFn>,
}

impl std::fmt::Debug for Tap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tap")
            .field("capture", &self.capture.as_ref().map(|c| c.borrow().len()))
            .field("act_quant", &self.act_quant.is_some())
            .field("act_quant_skip", &self.act_quant_skip.is_some())
            .finish()
    }
}

impl Tap {
    /// Applies the tap to a layer input: capture first, then quantize.
    ///
    /// `split` is the channel (conv) or feature (linear) index where the
    /// skip half of a concatenated input begins; `axis` is the channel axis.
    fn apply(&self, x: &Tensor, split: Option<usize>, axis: usize) -> Tensor {
        if let Some(buf) = &self.capture {
            buf.borrow_mut().push(x.clone());
        }
        match (&self.act_quant, split, &self.act_quant_skip) {
            (Some(q), Some(at), Some(qs)) if at < x.dim(axis) => {
                let trunk = x.narrow(axis, 0, at);
                let skip = x.narrow(axis, at, x.dim(axis) - at);
                Tensor::concat(&[&q(&trunk), &qs(&skip)], axis)
            }
            (Some(q), _, _) => q(x),
            (None, _, _) => x.clone(),
        }
    }
}

/// Object-safe view of a quantizable layer, the coupling surface between
/// the model zoo and the quantization driver in `fpdq-core`.
pub trait QuantLayer {
    /// Hierarchical layer name (e.g. `"down0.res0.conv1"`).
    fn qname(&self) -> &str;
    /// Convolution or linear.
    fn kind(&self) -> QuantKind;
    /// The weight parameter (`[o,c,kh,kw]` or `[out,in]`).
    fn weight(&self) -> &Param;
    /// The bias parameter, if any.
    fn bias(&self) -> Option<&Param>;
    /// Mutable access to the input tap.
    fn tap(&self) -> &RefCell<Tap>;
    /// For convolutions, the stride/padding spec.
    fn conv_spec(&self) -> Option<Conv2dSpec>;
    /// If this layer consumes `concat(trunk, skip)`, the channel index
    /// where the skip half begins.
    fn concat_split(&self) -> Option<usize>;
    /// The layer's packed-execution slot, letting the packing driver in
    /// `fpdq-kernels` swap the inference forward to bit-packed kernels.
    fn packed(&self) -> &PackedSlot;
    /// Applies the layer to `x` with an explicit weight, bypassing the tap
    /// (used by rounding-learning reconstruction).
    fn forward_with_weight(&self, x: &Tensor, weight: &Tensor) -> Tensor;
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// A fully connected layer `y = x Wᵀ + b` with weight `[out, in]`.
///
/// Accepts 2-D `[batch, in]` or 3-D `[batch, seq, in]` inputs.
#[derive(Debug)]
pub struct Linear {
    name: String,
    /// Weight `[out, in]`.
    pub weight: Param,
    /// Bias `[out]`, if enabled.
    pub bias: Option<Param>,
    tap: RefCell<Tap>,
    packed: PackedSlot,
    concat_split: Option<usize>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights.
    pub fn new(name: impl Into<String>, in_f: usize, out_f: usize, rng: &mut impl Rng) -> Self {
        Linear {
            name: name.into(),
            weight: Param::new(Tensor::kaiming(&[out_f, in_f], in_f, rng)),
            bias: Some(Param::new(Tensor::zeros(&[out_f]))),
            tap: RefCell::new(Tap::default()),
            packed: PackedSlot::default(),
            concat_split: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Marks this layer as consuming `concat(trunk, skip)` with the skip
    /// half starting at feature `split`.
    pub fn set_concat_split(&mut self, split: usize) {
        self.concat_split = Some(split);
    }

    fn affine(&self, x2: &Tensor, w: &Tensor) -> Tensor {
        let mut y = x2.matmul_nt(w);
        if let Some(b) = &self.bias {
            y = y.add(&b.value());
        }
        y
    }

    /// Inference forward: applies the tap, then either the packed-weight
    /// override (when installed) or the dense path.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let axis = x.ndim() - 1;
        let x = self.tap.borrow().apply(x, self.concat_split, axis);
        if let Some(y) = self.packed.run(&x) {
            return y;
        }
        self.forward_no_tap(&x)
    }

    fn forward_no_tap(&self, x: &Tensor) -> Tensor {
        let w = self.weight.value();
        match x.ndim() {
            2 => self.affine(x, &w),
            3 => {
                let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
                let y = self.affine(&x.reshape(&[b * l, d]), &w);
                y.reshape(&[b, l, self.out_features()])
            }
            n => panic!("Linear expects 2-D or 3-D input, got rank {n}"),
        }
    }

    /// Training forward over autograd variables.
    pub fn forward_var<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let w = tape.param(&self.weight);
        let dims = x.dims();
        let out = match dims.len() {
            2 => {
                let mut y = x.matmul_nt(w);
                if let Some(b) = &self.bias {
                    y = y.add(tape.param(b));
                }
                y
            }
            3 => {
                let (b, l, d) = (dims[0], dims[1], dims[2]);
                let mut y = x.reshape(&[b * l, d]).matmul_nt(w);
                if let Some(bias) = &self.bias {
                    y = y.add(tape.param(bias));
                }
                y.reshape(&[b, l, self.out_features()])
            }
            n => panic!("Linear expects 2-D or 3-D input, got rank {n}"),
        };
        out
    }

    /// Collects `(name, param)` pairs.
    pub fn collect_params(&self, out: &mut Vec<(String, Param)>) {
        out.push((format!("{}.weight", self.name), self.weight.clone()));
        if let Some(b) = &self.bias {
            out.push((format!("{}.bias", self.name), b.clone()));
        }
    }
}

impl QuantLayer for Linear {
    fn qname(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> QuantKind {
        QuantKind::Linear
    }
    fn weight(&self) -> &Param {
        &self.weight
    }
    fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }
    fn tap(&self) -> &RefCell<Tap> {
        &self.tap
    }
    fn conv_spec(&self) -> Option<Conv2dSpec> {
        None
    }
    fn concat_split(&self) -> Option<usize> {
        self.concat_split
    }
    fn packed(&self) -> &PackedSlot {
        &self.packed
    }
    fn forward_with_weight(&self, x: &Tensor, weight: &Tensor) -> Tensor {
        match x.ndim() {
            2 => self.affine(x, weight),
            3 => {
                let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
                self.affine(&x.reshape(&[b * l, d]), weight)
                    .reshape(&[b, l, self.out_features()])
            }
            n => panic!("Linear expects 2-D or 3-D input, got rank {n}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// A 2-D convolution layer with weight `[out, in, kh, kw]`.
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    /// Weight `[out, in, kh, kw]`.
    pub weight: Param,
    /// Bias `[out]`, if enabled.
    pub bias: Option<Param>,
    spec: Conv2dSpec,
    tap: RefCell<Tap>,
    packed: PackedSlot,
    concat_split: Option<usize>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        Conv2d {
            name: name.into(),
            weight: Param::new(Tensor::kaiming(&[out_c, in_c, kernel, kernel], fan_in, rng)),
            bias: Some(Param::new(Tensor::zeros(&[out_c]))),
            spec: Conv2dSpec::new(stride, padding),
            tap: RefCell::new(Tap::default()),
            packed: PackedSlot::default(),
            concat_split: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.dims()[0]
    }

    /// The stride/padding specification.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Marks this layer as consuming `concat(trunk, skip)` with the skip
    /// half starting at channel `split`.
    pub fn set_concat_split(&mut self, split: usize) {
        self.concat_split = Some(split);
    }

    /// Inference forward: applies the tap, then either the packed-weight
    /// override (when installed) or the dense path.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let x = self.tap.borrow().apply(x, self.concat_split, 1);
        if let Some(y) = self.packed.run(&x) {
            return y;
        }
        let bias = self.bias.as_ref().map(|b| b.value());
        x.conv2d(&self.weight.value(), bias.as_ref(), self.spec)
    }

    /// Training forward over autograd variables.
    pub fn forward_var<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv2d(w, b, self.spec)
    }

    /// Collects `(name, param)` pairs.
    pub fn collect_params(&self, out: &mut Vec<(String, Param)>) {
        out.push((format!("{}.weight", self.name), self.weight.clone()));
        if let Some(b) = &self.bias {
            out.push((format!("{}.bias", self.name), b.clone()));
        }
    }
}

impl QuantLayer for Conv2d {
    fn qname(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> QuantKind {
        QuantKind::Conv
    }
    fn weight(&self) -> &Param {
        &self.weight
    }
    fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }
    fn tap(&self) -> &RefCell<Tap> {
        &self.tap
    }
    fn conv_spec(&self) -> Option<Conv2dSpec> {
        Some(self.spec)
    }
    fn concat_split(&self) -> Option<usize> {
        self.concat_split
    }
    fn packed(&self) -> &PackedSlot {
        &self.packed
    }
    fn forward_with_weight(&self, x: &Tensor, weight: &Tensor) -> Tensor {
        let bias = self.bias.as_ref().map(|b| b.value());
        x.conv2d(weight, bias.as_ref(), self.spec)
    }
}

// ---------------------------------------------------------------------------
// Normalisation layers (kept in full precision by the paper, §VI-A)
// ---------------------------------------------------------------------------

/// Reference (tensor-path) group-norm forward.
pub fn group_norm_ref(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    groups: usize,
    eps: f32,
) -> Tensor {
    assert_eq!(x.ndim(), 4, "group_norm input must be [n,c,h,w]");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert_eq!(c % groups, 0, "channels {c} not divisible by {groups} groups");
    let gsz = c / groups;
    let m = gsz * h * w;
    let mut out = vec![0.0f32; x.numel()];
    let xd = x.data();
    for b in 0..n {
        for g in 0..groups {
            let start = (b * c + g * gsz) * h * w;
            let slice = &xd[start..start + m];
            let mu: f32 = slice.iter().sum::<f32>() / m as f32;
            let var: f32 = slice.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / m as f32;
            let is = 1.0 / (var + eps).sqrt();
            for ci in 0..gsz {
                let ch = g * gsz + ci;
                let cstart = (b * c + ch) * h * w;
                let (gv, bv) = (gamma.data()[ch], beta.data()[ch]);
                for i in 0..h * w {
                    out[cstart + i] = (xd[cstart + i] - mu) * is * gv + bv;
                }
            }
        }
    }
    Tensor::from_vec(out, x.dims())
}

/// Reference (tensor-path) layer-norm forward over the innermost dim.
pub fn layer_norm_ref(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    let d = *x.dims().last().expect("layer_norm on rank-0");
    let rows = x.numel() / d;
    let mut out = vec![0.0f32; x.numel()];
    for r in 0..rows {
        let row = &x.data()[r * d..(r + 1) * d];
        let mu: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
        let is = 1.0 / (var + eps).sqrt();
        for i in 0..d {
            out[r * d + i] = (row[i] - mu) * is * gamma.data()[i] + beta.data()[i];
        }
    }
    Tensor::from_vec(out, x.dims())
}

/// Group normalisation with learned affine parameters.
#[derive(Debug)]
pub struct GroupNorm {
    name: String,
    /// Scale `[c]`.
    pub gamma: Param,
    /// Shift `[c]`.
    pub beta: Param,
    groups: usize,
    eps: f32,
}

impl GroupNorm {
    /// Creates a group norm over `channels` split into `groups`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not divisible by `groups`.
    pub fn new(name: impl Into<String>, channels: usize, groups: usize) -> Self {
        assert_eq!(channels % groups, 0, "channels {channels} not divisible by {groups}");
        GroupNorm {
            name: name.into(),
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            groups,
            eps: 1e-5,
        }
    }

    /// Inference forward.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        group_norm_ref(x, &self.gamma.value(), &self.beta.value(), self.groups, self.eps)
    }

    /// Training forward.
    pub fn forward_var<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        x.group_norm(tape.param(&self.gamma), tape.param(&self.beta), self.groups, self.eps)
    }

    /// Collects `(name, param)` pairs.
    pub fn collect_params(&self, out: &mut Vec<(String, Param)>) {
        out.push((format!("{}.gamma", self.name), self.gamma.clone()));
        out.push((format!("{}.beta", self.name), self.beta.clone()));
    }
}

/// Layer normalisation over the innermost dimension.
#[derive(Debug)]
pub struct LayerNorm {
    name: String,
    /// Scale `[d]`.
    pub gamma: Param,
    /// Shift `[d]`.
    pub beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        LayerNorm {
            name: name.into(),
            gamma: Param::new(Tensor::ones(&[dim])),
            beta: Param::new(Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Inference forward.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        layer_norm_ref(x, &self.gamma.value(), &self.beta.value(), self.eps)
    }

    /// Training forward.
    pub fn forward_var<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        x.layer_norm(tape.param(&self.gamma), tape.param(&self.beta), self.eps)
    }

    /// Collects `(name, param)` pairs.
    pub fn collect_params(&self, out: &mut Vec<(String, Param)>) {
        out.push((format!("{}.gamma", self.name), self.gamma.clone()));
        out.push((format!("{}.beta", self.name), self.beta.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_paths_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new("l", 4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y_tensor = lin.forward(&x);
        let tape = Tape::new();
        let y_var = lin.forward_var(&tape, tape.constant(x.clone()));
        for (a, b) in y_tensor.data().iter().zip(y_var.value().data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_3d_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new("l", 4, 6, &mut rng);
        let x = Tensor::randn(&[2, 5, 4], &mut rng);
        let y = lin.forward(&x);
        assert_eq!(y.dims(), &[2, 5, 6]);
        // Row independence: each (b, l) position is a separate affine map.
        let row = x.narrow(0, 1, 1).narrow(1, 3, 1).reshape(&[1, 4]);
        let yr = lin.forward(&row);
        for (a, b) in yr.data().iter().zip(y.narrow(0, 1, 1).narrow(1, 3, 1).data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_paths_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new("c", 3, 5, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let y_tensor = conv.forward(&x);
        let tape = Tape::new();
        let y_var = conv.forward_var(&tape, tape.constant(x.clone()));
        assert_eq!(y_tensor.dims(), &[2, 5, 6, 6]);
        for (a, b) in y_tensor.data().iter().zip(y_var.value().data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn tap_capture_records_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new("c", 2, 2, 1, 1, 0, &mut rng);
        let buf = Rc::new(RefCell::new(Vec::new()));
        conv.tap().borrow_mut().capture = Some(buf.clone());
        let x = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        conv.forward(&x);
        conv.forward(&x);
        assert_eq!(buf.borrow().len(), 2);
        assert_eq!(buf.borrow()[0].data(), x.data());
    }

    #[test]
    fn tap_act_quant_applies() {
        let mut rng = StdRng::seed_from_u64(5);
        let lin = Linear::new("l", 2, 2, &mut rng);
        // A "quantizer" that zeroes everything: output must equal bias.
        lin.tap().borrow_mut().act_quant = Some(Rc::new(|_x: &Tensor| Tensor::zeros(&[1, 2])));
        lin.bias
            .as_ref()
            .unwrap()
            .update(|b| b.data_mut().copy_from_slice(&[1.5, -2.5]));
        let y = lin.forward(&Tensor::ones(&[1, 2]));
        assert_eq!(y.data(), &[1.5, -2.5]);
    }

    #[test]
    fn tap_split_quantizes_halves_independently() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new("c", 4, 1, 1, 1, 0, &mut rng);
        conv.set_concat_split(2);
        conv.weight.replace(Tensor::ones(&[1, 4, 1, 1]));
        conv.bias.as_ref().unwrap().update(|b| b.data_mut()[0] = 0.0);
        // Trunk quantizer doubles; skip quantizer negates.
        conv.tap().borrow_mut().act_quant = Some(Rc::new(|x: &Tensor| x.mul_scalar(2.0)));
        conv.tap().borrow_mut().act_quant_skip = Some(Rc::new(|x: &Tensor| x.neg()));
        let x = Tensor::ones(&[1, 4, 1, 1]);
        let y = conv.forward(&x);
        // 2 trunk channels doubled (2+2) + 2 skip channels negated (-1-1) = 2
        assert_eq!(y.data(), &[2.0]);
    }

    #[test]
    fn group_norm_normalises() {
        let mut rng = StdRng::seed_from_u64(7);
        let gn = GroupNorm::new("gn", 8, 4);
        let x = Tensor::randn(&[2, 8, 4, 4], &mut rng).mul_scalar(5.0).add_scalar(3.0);
        let y = gn.forward(&x);
        // With unit gamma / zero beta each group is standardised.
        assert!(y.mean().abs() < 1e-4);
        assert!((y.std() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn group_norm_paths_agree() {
        let mut rng = StdRng::seed_from_u64(8);
        let gn = GroupNorm::new("gn", 6, 3);
        gn.gamma.replace(Tensor::rand_uniform(&[6], 0.5, 1.5, &mut rng));
        gn.beta.replace(Tensor::randn(&[6], &mut rng));
        let x = Tensor::randn(&[2, 6, 3, 3], &mut rng);
        let y1 = gn.forward(&x);
        let tape = Tape::new();
        let y2 = gn.forward_var(&tape, tape.constant(x));
        for (a, b) in y1.data().iter().zip(y2.value().data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_paths_agree() {
        let mut rng = StdRng::seed_from_u64(9);
        let ln = LayerNorm::new("ln", 10);
        ln.gamma.replace(Tensor::rand_uniform(&[10], 0.5, 1.5, &mut rng));
        let x = Tensor::randn(&[4, 10], &mut rng);
        let y1 = ln.forward(&x);
        let tape = Tape::new();
        let y2 = ln.forward_var(&tape, tape.constant(x));
        for (a, b) in y1.data().iter().zip(y2.value().data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn params_are_collected_with_names() {
        let mut rng = StdRng::seed_from_u64(10);
        let lin = Linear::new("block.proj", 2, 2, &mut rng);
        let mut params = Vec::new();
        lin.collect_params(&mut params);
        let names: Vec<&str> = params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["block.proj.weight", "block.proj.bias"]);
    }

    #[test]
    fn forward_with_weight_bypasses_tap() {
        let mut rng = StdRng::seed_from_u64(11);
        let lin = Linear::new("l", 2, 2, &mut rng);
        lin.tap().borrow_mut().act_quant = Some(Rc::new(|_x: &Tensor| panic!("tap must not run")));
        let x = Tensor::ones(&[1, 2]);
        let w = Tensor::eye(2);
        let y = lin.forward_with_weight(&x, &w);
        assert_eq!(y.dims(), &[1, 2]);
    }
}
