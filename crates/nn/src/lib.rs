//! # fpdq-nn
//!
//! Neural-network layers and model architectures for the fpdq workspace:
//! the diffusion U-Net (ResNet + attention blocks with skip connections,
//! optional cross-attention conditioning), a small convolutional
//! autoencoder (the latent-diffusion first stage), and a transformer text
//! encoder — i.e. every subnetwork in Figure 1 of the paper.
//!
//! # Two forward paths
//!
//! Every layer has:
//!
//! * an **inference path** (`forward`) over plain [`fpdq_tensor::Tensor`]s —
//!   this is where post-training quantization hooks ([`Tap`]) live:
//!   activation fake-quantizers, split-quantization of concatenated skip
//!   connections, and calibration capture;
//! * a **training path** (`forward_var`) over [`fpdq_autograd::Var`]s used
//!   to train the substrate models from scratch.
//!
//! The two paths are verified against each other in tests.
//!
//! # Quantization interface
//!
//! `fpdq-core` (the paper's method) depends on this crate, not vice versa.
//! The coupling surface is deliberately small: quantizable layers implement
//! [`QuantLayer`], models implement [`visit_quant_layers`] enumeration, and
//! activation quantizers are plain `Fn(&Tensor) -> Tensor` objects installed
//! into each layer's [`Tap`].
//!
//! [`visit_quant_layers`]: UNet::visit_quant_layers

pub mod attention;
pub mod autoencoder;
pub mod blocks;
pub mod layers;
pub mod module;
pub mod text;
pub mod unet;

pub use attention::{MultiHeadAttention, TransformerBlock};
pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use layers::{
    group_norm_ref, layer_norm_ref, ActQuantFn, Conv2d, GroupNorm, LayerNorm, Linear,
    PackedForwardFn, PackedSlot, QuantKind, QuantLayer, Tap,
};
pub use module::{load_params, save_params, ParamCollector};
pub use text::{TextEncoder, TextEncoderConfig};
pub use unet::{UNet, UNetConfig};
