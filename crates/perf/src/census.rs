//! Layer-by-layer cost census of a U-Net architecture.
//!
//! Mirrors `fpdq_nn::UNet::new` exactly (the tests enforce parameter-count
//! equality against a live model), tracking the spatial resolution at each
//! level and emitting one [`LayerCost`] per primitive operation.

use fpdq_nn::UNetConfig;

/// The layer classes of the paper's Figure 4 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerClass {
    /// 2-D convolutions.
    Conv2d,
    /// Fully connected layers, including attention projections (the
    /// paper's "linear layers (including layers inside the attention
    /// units)").
    Linear,
    /// Group / layer normalisation.
    Norm,
    /// SiLU activations.
    Silu,
    /// Attention internals that are neither conv nor linear: QKᵀ / AV
    /// batched matmuls and the softmax.
    Attention,
}

impl LayerClass {
    /// All classes in display order.
    pub const ALL: [LayerClass; 5] = [
        LayerClass::Conv2d,
        LayerClass::Linear,
        LayerClass::Norm,
        LayerClass::Silu,
        LayerClass::Attention,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            LayerClass::Conv2d => "Conv2d",
            LayerClass::Linear => "Linear",
            LayerClass::Norm => "Norm",
            LayerClass::Silu => "SiLU",
            LayerClass::Attention => "Attention",
        }
    }
}

/// Cost model of one primitive operation.
#[derive(Clone, Debug)]
pub struct LayerCost {
    /// Hierarchical name.
    pub name: String,
    /// Figure-4 class.
    pub class: LayerClass,
    /// Floating-point operations (multiply-accumulate = 2 FLOPs).
    pub flops: f64,
    /// Parameter count (elements).
    pub params: u64,
    /// Activation elements read.
    pub reads: u64,
    /// Activation elements written.
    pub writes: u64,
}

/// A complete architecture census.
#[derive(Clone, Debug, Default)]
pub struct Census {
    /// Every primitive in execution order.
    pub layers: Vec<LayerCost>,
}

impl Census {
    /// Total FLOPs of one forward pass.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Total parameter elements.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// FLOPs grouped by class, in [`LayerClass::ALL`] order.
    pub fn flops_by_class(&self) -> Vec<(LayerClass, f64)> {
        LayerClass::ALL
            .iter()
            .map(|&c| (c, self.layers.iter().filter(|l| l.class == c).map(|l| l.flops).sum()))
            .collect()
    }
}

struct Walker {
    census: Census,
    batch: u64,
    ctx_len: u64,
    ctx_dim: u64,
    temb_dim: u64,
}

impl Walker {
    fn push(
        &mut self,
        name: String,
        class: LayerClass,
        flops: f64,
        params: u64,
        reads: u64,
        writes: u64,
    ) {
        self.census.layers.push(LayerCost { name, class, flops, params, reads, writes });
    }

    #[allow(clippy::too_many_arguments)]
    fn conv(&mut self, name: &str, in_c: u64, out_c: u64, k: u64, h: u64, w: u64, stride: u64) {
        let (oh, ow) = (h.div_ceil(stride), w.div_ceil(stride));
        let flops = 2.0 * (self.batch * out_c * in_c * k * k * oh * ow) as f64;
        self.push(
            name.to_string(),
            LayerClass::Conv2d,
            flops,
            out_c * in_c * k * k + out_c,
            self.batch * in_c * h * w,
            self.batch * out_c * oh * ow,
        );
    }

    fn linear(&mut self, name: &str, in_f: u64, out_f: u64, tokens: u64) {
        let flops = 2.0 * (self.batch * tokens * in_f * out_f) as f64;
        self.push(
            name.to_string(),
            LayerClass::Linear,
            flops,
            in_f * out_f + out_f,
            self.batch * tokens * in_f,
            self.batch * tokens * out_f,
        );
    }

    fn norm(&mut self, name: &str, channels: u64, elems_per_sample: u64) {
        let n = self.batch * elems_per_sample;
        self.push(name.to_string(), LayerClass::Norm, 5.0 * n as f64, 2 * channels, n, n);
    }

    fn silu(&mut self, name: &str, elems_per_sample: u64) {
        let n = self.batch * elems_per_sample;
        self.push(name.to_string(), LayerClass::Silu, 4.0 * n as f64, 0, n, n);
    }

    fn attention_core(&mut self, name: &str, tokens: u64, kv_tokens: u64, dim: u64) {
        // QKᵀ and AV batched matmuls + softmax over [tokens, kv_tokens].
        let qk = 2.0 * (self.batch * tokens * kv_tokens * dim) as f64;
        let av = 2.0 * (self.batch * tokens * kv_tokens * dim) as f64;
        let scores = self.batch * tokens * kv_tokens;
        self.push(
            format!("{name}.qk_av"),
            LayerClass::Attention,
            qk + av,
            0,
            self.batch * (tokens + kv_tokens) * dim,
            scores,
        );
        self.push(
            format!("{name}.softmax"),
            LayerClass::Attention,
            5.0 * scores as f64,
            0,
            scores,
            scores,
        );
    }

    fn res_block(&mut self, name: &str, in_c: u64, out_c: u64, h: u64, w: u64) {
        self.norm(&format!("{name}.norm1"), in_c, in_c * h * w);
        self.silu(&format!("{name}.silu1"), in_c * h * w);
        self.conv(&format!("{name}.conv1"), in_c, out_c, 3, h, w, 1);
        self.silu(&format!("{name}.silu_t"), self.temb_dim);
        self.linear(&format!("{name}.time_proj"), self.temb_dim, out_c, 1);
        self.norm(&format!("{name}.norm2"), out_c, out_c * h * w);
        self.silu(&format!("{name}.silu2"), out_c * h * w);
        self.conv(&format!("{name}.conv2"), out_c, out_c, 3, h, w, 1);
        if in_c != out_c {
            self.conv(&format!("{name}.shortcut"), in_c, out_c, 1, h, w, 1);
        }
    }

    fn transformer(&mut self, name: &str, c: u64, h: u64, w: u64, cross: bool) {
        let tokens = h * w;
        self.norm(&format!("{name}.norm"), c, c * tokens);
        self.conv(&format!("{name}.proj_in"), c, c, 1, h, w, 1);
        // Self-attention.
        self.norm(&format!("{name}.block.norm1"), c, c * tokens);
        for p in ["to_q", "to_k", "to_v"] {
            self.linear(&format!("{name}.block.attn1.{p}"), c, c, tokens);
        }
        self.attention_core(&format!("{name}.block.attn1"), tokens, tokens, c);
        self.linear(&format!("{name}.block.attn1.to_out"), c, c, tokens);
        // Cross-attention.
        if cross {
            self.norm(&format!("{name}.block.norm2"), c, c * tokens);
            self.linear(&format!("{name}.block.attn2.to_q"), c, c, tokens);
            self.linear(&format!("{name}.block.attn2.to_k"), self.ctx_dim, c, self.ctx_len);
            self.linear(&format!("{name}.block.attn2.to_v"), self.ctx_dim, c, self.ctx_len);
            self.attention_core(&format!("{name}.block.attn2"), tokens, self.ctx_len, c);
            self.linear(&format!("{name}.block.attn2.to_out"), c, c, tokens);
        }
        // Feed-forward (hidden = 2c, SiLU between).
        self.norm(&format!("{name}.block.norm_ff"), c, c * tokens);
        self.linear(&format!("{name}.block.ff1"), c, 2 * c, tokens);
        self.silu(&format!("{name}.block.ff_silu"), 2 * c * tokens);
        self.linear(&format!("{name}.block.ff2"), 2 * c, c, tokens);
        self.conv(&format!("{name}.proj_out"), c, c, 1, h, w, 1);
    }
}

/// Walks the architecture, mirroring `UNet::new`, and returns the census.
///
/// `input` is `(channels, height, width)` of the U-Net input; `ctx_len`
/// the cross-attention sequence length (ignored for unconditional
/// configs).
pub fn census(
    cfg: &UNetConfig,
    input: (usize, usize, usize),
    batch: usize,
    ctx_len: usize,
) -> Census {
    let base = cfg.base_channels as u64;
    let temb = 4 * base;
    let mut w = Walker {
        census: Census::default(),
        batch: batch as u64,
        ctx_len: ctx_len as u64,
        ctx_dim: cfg.context_dim.unwrap_or(0) as u64,
        temb_dim: temb,
    };
    let cross = cfg.context_dim.is_some();
    let (in_c, mut h, mut wd) = (input.0 as u64, input.1 as u64, input.2 as u64);
    let levels = cfg.channel_mults.len();

    w.conv("conv_in", in_c, base, 3, h, wd, 1);
    w.linear("time1", base, temb, 1);
    w.silu("time_silu", temb);
    w.linear("time2", temb, temb, 1);

    let mut skip_chs = vec![base];
    let mut ch = base;
    for (i, &mult) in cfg.channel_mults.iter().enumerate() {
        let out_ch = base * mult as u64;
        for j in 0..cfg.num_res_blocks {
            w.res_block(&format!("down{i}.res{j}"), ch, out_ch, h, wd);
            ch = out_ch;
            if cfg.attn_levels.contains(&i) {
                w.transformer(&format!("down{i}.attn{j}"), ch, h, wd, cross);
            }
            skip_chs.push(ch);
        }
        if i != levels - 1 {
            w.conv(&format!("down{i}.down"), ch, ch, 3, h, wd, 2);
            h = h.div_ceil(2);
            wd = wd.div_ceil(2);
            skip_chs.push(ch);
        }
    }

    w.res_block("mid.res0", ch, ch, h, wd);
    if !cfg.attn_levels.is_empty() || cross {
        w.transformer("mid.attn", ch, h, wd, cross);
    }
    w.res_block("mid.res1", ch, ch, h, wd);

    for (i, &mult) in cfg.channel_mults.iter().enumerate().rev() {
        let out_ch = base * mult as u64;
        for j in 0..cfg.num_res_blocks + 1 {
            let skip_ch = skip_chs.pop().expect("census skip bookkeeping");
            w.res_block(&format!("up{i}.res{j}"), ch + skip_ch, out_ch, h, wd);
            ch = out_ch;
            if cfg.attn_levels.contains(&i) {
                w.transformer(&format!("up{i}.attn{j}"), ch, h, wd, cross);
            }
        }
        if i != 0 {
            h *= 2;
            wd *= 2;
            w.conv(&format!("up{i}.up"), ch, ch, 3, h, wd, 1);
        }
    }

    w.norm("out_norm", ch, ch * h * wd);
    w.silu("out_silu", ch * h * wd);
    w.conv("conv_out", ch, cfg.out_channels as u64, 3, h, wd, 1);
    w.census
}

/// A U-Net configuration at real Stable-Diffusion-v1 scale (≈ 860M
/// parameters, 64×64×4 latents, 77-token CLIP context) for reproducing the
/// paper's §III characterization numbers.
pub fn sd_scale_config() -> UNetConfig {
    UNetConfig {
        in_channels: 4,
        out_channels: 4,
        base_channels: 320,
        channel_mults: vec![1, 2, 4, 4],
        num_res_blocks: 2,
        attn_levels: vec![0, 1, 2],
        heads: 8,
        context_dim: Some(768),
        norm_groups: 32,
    }
}

/// Input dims that go with [`sd_scale_config`].
pub fn sd_scale_input() -> (usize, usize, usize) {
    (4, 64, 64)
}

/// CLIP context length that goes with [`sd_scale_config`].
pub const SD_CONTEXT_LEN: usize = 77;

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_nn::UNet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn census_params_match_live_model_exactly() {
        // The census must mirror UNet::new including every bias and norm
        // parameter (excluding nothing).
        for cfg in [
            UNetConfig::tiny(3),
            UNetConfig { context_dim: Some(12), ..UNetConfig::tiny(4) },
            UNetConfig {
                in_channels: 4,
                out_channels: 4,
                base_channels: 16,
                channel_mults: vec![1, 2, 2],
                num_res_blocks: 2,
                attn_levels: vec![1, 2],
                heads: 2,
                context_dim: Some(16),
                norm_groups: 4,
            },
        ] {
            let mut rng = StdRng::seed_from_u64(0);
            let unet = UNet::new(cfg.clone(), &mut rng);
            let c = census(&cfg, (cfg.in_channels, 8, 8), 1, 6);
            assert_eq!(
                c.total_params(),
                unet.param_count() as u64,
                "census/model param mismatch for {cfg:?}"
            );
        }
    }

    #[test]
    fn census_quant_layer_count_matches_model() {
        let cfg = UNetConfig { context_dim: Some(12), ..UNetConfig::tiny(4) };
        let mut rng = StdRng::seed_from_u64(1);
        let unet = UNet::new(cfg.clone(), &mut rng);
        let mut model_count = 0;
        unet.visit_quant_layers(&mut |_| model_count += 1);
        let c = census(&cfg, (4, 8, 8), 1, 6);
        let census_count = c
            .layers
            .iter()
            .filter(|l| matches!(l.class, LayerClass::Conv2d | LayerClass::Linear))
            .count();
        assert_eq!(census_count, model_count);
    }

    #[test]
    fn sd_scale_parameter_count_near_860m() {
        let c = census(&sd_scale_config(), sd_scale_input(), 1, SD_CONTEXT_LEN);
        let params = c.total_params() as f64;
        // The paper quotes 860M for Stable Diffusion's U-Net; our
        // architecture is the same family with a simplified transformer,
        // so demand the right order of magnitude.
        assert!((500e6..1_300e6).contains(&params), "SD-scale census has {params:.3e} params");
    }

    #[test]
    fn conv_and_linear_dominate_flops_at_sd_scale() {
        // §III: "Most of the time is spent on the Conv2d and linear
        // layers". At minimum they must dominate the FLOP census.
        let c = census(&sd_scale_config(), sd_scale_input(), 1, SD_CONTEXT_LEN);
        let by_class = c.flops_by_class();
        let total = c.total_flops();
        let convlin: f64 = by_class
            .iter()
            .filter(|(cl, _)| matches!(cl, LayerClass::Conv2d | LayerClass::Linear))
            .map(|(_, f)| f)
            .sum();
        assert!(convlin / total > 0.75, "conv+linear = {:.1}%", 100.0 * convlin / total);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let cfg = UNetConfig::tiny(3);
        let c1 = census(&cfg, (3, 8, 8), 1, 0);
        let c8 = census(&cfg, (3, 8, 8), 8, 0);
        assert!((c8.total_flops() / c1.total_flops() - 8.0).abs() < 1e-9);
        assert_eq!(c1.total_params(), c8.total_params());
    }
}
