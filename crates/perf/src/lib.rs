//! # fpdq-perf
//!
//! The analytic performance model behind the paper's §III
//! characterization of Stable Diffusion inference:
//!
//! * [`census()`][census::census] — walks a `fpdq-nn` U-Net architecture and emits every
//!   layer's FLOPs, parameter bytes and activation traffic, classed the
//!   way the paper's Figure 4 groups them (Conv2d / Linear / Norm / SiLU /
//!   attention-internals);
//! * [`device`] — roofline device presets calibrated to the paper's
//!   hardware (V100-class GPU, Xeon-Gold-class CPU, plus H100/Blackwell
//!   entries encoding the "FP8/INT8 and FP4/INT4 have equal peak
//!   throughput" premise from §I);
//! * [`roofline`] — per-layer latency = max(compute, memory) + launch
//!   overhead, aggregated into the Figure-4 breakdown;
//! * [`memory`] — a peak-VRAM planner over the U-Net graph including the
//!   attention score matrices and the skip-connection stash, reproducing
//!   Figure 5's batch-size curve and the "attention dominates" finding.
//!
//! The paper measured a real 860M-parameter Stable Diffusion;
//! [`census::sd_scale_config`] provides a U-Net configuration at those
//! dimensions so the model reproduces the *shape* of the measured
//! breakdowns on the same architecture class.

pub mod census;
pub mod device;
pub mod memory;
pub mod roofline;

pub use census::{census, sd_scale_config, Census, LayerClass, LayerCost};
pub use device::{Device, NumberFormat};
pub use memory::{peak_memory, MemoryReport};
pub use roofline::{latency, LatencyReport};
