//! Roofline latency estimation over a layer census (paper Fig. 4).

use crate::census::{Census, LayerClass};
use crate::device::{Device, NumberFormat};

/// Per-class and total latency estimates.
#[derive(Clone, Debug)]
pub struct LatencyReport {
    /// `(class, seconds)` in [`LayerClass::ALL`] order.
    pub by_class: Vec<(LayerClass, f64)>,
    /// End-to-end seconds for one forward pass.
    pub total: f64,
}

impl LatencyReport {
    /// Normalised per-class shares (sums to 1).
    pub fn shares(&self) -> Vec<(LayerClass, f64)> {
        self.by_class.iter().map(|&(c, s)| (c, s / self.total.max(1e-12))).collect()
    }

    /// Share of one class.
    pub fn share_of(&self, class: LayerClass) -> f64 {
        self.shares().iter().find(|(c, _)| *c == class).map(|&(_, s)| s).unwrap_or(0.0)
    }
}

/// Estimates per-layer latency as
/// `max(flops / (peak·eff), bytes / bandwidth) + launch overhead` and
/// aggregates by class.
///
/// `weights_fmt` and `acts_fmt` set the representation of parameters and
/// activations (the quantization lever: FP8/INT8 halve traffic 4× vs FP32
/// and raise usable compute on 8-bit-capable devices). Normalisation and
/// SiLU stay in FP32, as in the paper's method.
pub fn latency(
    census: &Census,
    device: &Device,
    weights_fmt: NumberFormat,
    acts_fmt: NumberFormat,
) -> LatencyReport {
    let mut by_class: Vec<(LayerClass, f64)> = LayerClass::ALL.iter().map(|&c| (c, 0.0)).collect();
    let mut total = 0.0;
    for layer in &census.layers {
        let quantized = matches!(layer.class, LayerClass::Conv2d | LayerClass::Linear);
        let (wfmt, afmt, compute_fmt) = if quantized {
            (weights_fmt, acts_fmt, acts_fmt)
        } else {
            (NumberFormat::Fp32, NumberFormat::Fp32, NumberFormat::Fp32)
        };
        // GEMM-class work (conv, linear, attention matmuls) sustains high
        // utilisation; norms/activations are elementwise/memory-bound.
        let gemm_like =
            matches!(layer.class, LayerClass::Conv2d | LayerClass::Linear | LayerClass::Attention);
        let eff = if gemm_like { device.gemm_efficiency } else { device.elementwise_efficiency };
        let compute = layer.flops / (device.peak_for(compute_fmt) * eff);
        let bytes =
            layer.params as f64 * wfmt.bytes() + (layer.reads + layer.writes) as f64 * afmt.bytes();
        let bw =
            if gemm_like { device.mem_bw } else { device.mem_bw * device.elementwise_bw_fraction };
        let memory = bytes / bw;
        let t = compute.max(memory) + device.launch_overhead;
        total += t;
        let slot = by_class.iter_mut().find(|(c, _)| *c == layer.class).expect("class slot");
        slot.1 += t;
    }
    LatencyReport { by_class, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::{census, sd_scale_config, sd_scale_input, SD_CONTEXT_LEN};
    use crate::device::Device;

    fn sd_census(batch: usize) -> Census {
        census(&sd_scale_config(), sd_scale_input(), batch, SD_CONTEXT_LEN)
    }

    #[test]
    fn sd_step_latency_in_plausible_v100_range() {
        // §III measures ~6.1 s for 50 U-Net steps on a V100 (FP32),
        // i.e. ~120 ms per step at batch 1. The roofline estimate should
        // land within a small factor.
        let report =
            latency(&sd_census(1), &Device::v100_like(), NumberFormat::Fp32, NumberFormat::Fp32);
        let ms = report.total * 1e3;
        assert!((30.0..400.0).contains(&ms), "V100 step estimate {ms:.1} ms");
    }

    #[test]
    fn gpu_speedup_over_cpu_matches_paper_order() {
        // §III: GPU is 31× (batch 1) and 72× (batch 8) faster than the
        // Xeon. Check the ratio grows with batch and is order-10–100.
        let gpu = Device::v100_like();
        let cpu = Device::xeon_like();
        let r1 = {
            let c = sd_census(1);
            latency(&c, &cpu, NumberFormat::Fp32, NumberFormat::Fp32).total
                / latency(&c, &gpu, NumberFormat::Fp32, NumberFormat::Fp32).total
        };
        let r8 = {
            let c = sd_census(8);
            latency(&c, &cpu, NumberFormat::Fp32, NumberFormat::Fp32).total
                / latency(&c, &gpu, NumberFormat::Fp32, NumberFormat::Fp32).total
        };
        assert!(r1 > 8.0 && r1 < 150.0, "batch-1 speedup {r1:.1}");
        assert!(r8 > r1, "speedup should grow with batch: {r1:.1} -> {r8:.1}");
    }

    #[test]
    fn conv_and_linear_dominate_latency() {
        // Fig. 4: conv + linear (the paper folds the attention matmuls
        // into "linear layers ... inside the attention units") are the
        // large bars on both platforms.
        for device in [Device::v100_like(), Device::xeon_like()] {
            let report = latency(&sd_census(1), &device, NumberFormat::Fp32, NumberFormat::Fp32);
            let convlin = report.share_of(LayerClass::Conv2d)
                + report.share_of(LayerClass::Linear)
                + report.share_of(LayerClass::Attention);
            assert!(convlin > 0.6, "{}: conv+linear share {convlin:.2}", device.name);
        }
    }

    #[test]
    fn norm_silu_share_larger_on_gpu_than_cpu() {
        // Fig. 4: normalisation + SiLU ≈ 25% on the GPU but negligible on
        // the CPU (launch overhead + memory-bound elementwise work hurt
        // the GPU relatively more).
        let gpu =
            latency(&sd_census(1), &Device::v100_like(), NumberFormat::Fp32, NumberFormat::Fp32);
        let cpu =
            latency(&sd_census(1), &Device::xeon_like(), NumberFormat::Fp32, NumberFormat::Fp32);
        let gpu_aux = gpu.share_of(LayerClass::Norm) + gpu.share_of(LayerClass::Silu);
        let cpu_aux = cpu.share_of(LayerClass::Norm) + cpu.share_of(LayerClass::Silu);
        assert!(gpu_aux > cpu_aux * 1.5, "aux share gpu {gpu_aux:.3} vs cpu {cpu_aux:.3}");
    }

    #[test]
    fn linear_share_stable_under_batch_on_gpu() {
        // Fig. 4 reports a modest *increase* of the linear share at batch
        // 8 on the GPU, which the paper attributes to memory-traffic and
        // cache effects. A pure roofline (traffic and compute both scale
        // linearly with batch) predicts a near-constant share; we assert
        // stability here and record the residual gap in EXPERIMENTS.md.
        let gpu = Device::v100_like();
        let b1 = latency(&sd_census(1), &gpu, NumberFormat::Fp32, NumberFormat::Fp32);
        let b8 = latency(&sd_census(8), &gpu, NumberFormat::Fp32, NumberFormat::Fp32);
        let (s1, s8) = (b1.share_of(LayerClass::Linear), b8.share_of(LayerClass::Linear));
        assert!((s1 - s8).abs() < 0.05, "linear share b1 {s1:.3} vs b8 {s8:.3}");
    }

    #[test]
    fn quantization_reduces_latency_on_8bit_hardware() {
        let h100 = Device::h100_like();
        let c = sd_census(8);
        let fp32 = latency(&c, &h100, NumberFormat::Fp32, NumberFormat::Fp32).total;
        let fp8 = latency(&c, &h100, NumberFormat::Fp8, NumberFormat::Fp8).total;
        let int8 = latency(&c, &h100, NumberFormat::Int8, NumberFormat::Int8).total;
        assert!(fp8 < fp32, "FP8 should be faster than FP32");
        // The premise: FP8 and INT8 cost the same.
        assert!((fp8 - int8).abs() < 1e-9 * fp32.max(1.0));
    }
}
