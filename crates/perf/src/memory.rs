//! Peak-memory planner (paper §III, Fig. 5).
//!
//! Walks the U-Net execution order tracking the live activation set: the
//! current feature map, the skip-connection stash (alive from the down
//! path until consumed on the up path — the U-Net peculiarity the paper
//! highlights), and each layer's transient buffers. Attention score
//! matrices `[batch·heads, tokens, kv_tokens]` are modeled explicitly;
//! they are what makes Stable Diffusion's VRAM explode with batch size
//! (the paper's `(256, 4096, 4096)` tensor ≈ 17 GB example).

use fpdq_nn::UNetConfig;

/// Peak-memory estimate breakdown (bytes).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryReport {
    /// Model parameters.
    pub weights: f64,
    /// Peak live activation set (excluding attention transients).
    pub activations: f64,
    /// Largest attention transient (scores + softmax output).
    pub attention: f64,
}

impl MemoryReport {
    /// Total peak bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.activations + self.attention
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() / (1024.0 * 1024.0 * 1024.0)
    }
}

/// Estimates peak inference memory for a U-Net.
///
/// `weight_bytes` / `act_bytes` are bytes per element of the respective
/// representations (4.0 for FP32, 1.0 for FP8/INT8, 0.5 for FP4 — the
/// quantization lever of the paper's Fig. 5 discussion).
pub fn peak_memory(
    cfg: &UNetConfig,
    input: (usize, usize, usize),
    batch: usize,
    ctx_len: usize,
    weight_bytes: f64,
    act_bytes: f64,
) -> MemoryReport {
    let base = cfg.base_channels as f64;
    let b = batch as f64;
    let heads = cfg.heads.max(1) as f64;
    let levels = cfg.channel_mults.len();
    let (_, ih, iw) = input;

    // Parameters: reuse the census (exact).
    let weights =
        crate::census::census(cfg, input, 1, ctx_len).total_params() as f64 * weight_bytes;

    let mut h = ih as f64;
    let mut w = iw as f64;
    let mut ch = base;
    let mut stash = vec![base * h * w]; // conv_in output
    let mut peak_live = 0.0f64;
    let mut peak_attn = 0.0f64;

    let visit_feature = |live_stash: f64, feat: f64, peak_live: &mut f64| {
        // Live set: stash + current map + one working copy.
        *peak_live = (*peak_live).max(live_stash + 2.0 * feat);
    };
    let visit_attention = |feat: f64,
                           tokens: f64,
                           kv: f64,
                           peak_attn: &mut f64,
                           live_stash: f64,
                           peak_live: &mut f64| {
        // Scores and their softmax: [b·heads, tokens, kv] ×2.
        let scores = b * heads * tokens * kv * 2.0;
        *peak_attn = (*peak_attn).max(scores * act_bytes / (b * heads).max(1.0) * (b * heads));
        *peak_attn = (*peak_attn).max(scores * act_bytes);
        *peak_live = (*peak_live).max(live_stash + 2.0 * feat);
    };

    for (i, &mult) in cfg.channel_mults.iter().enumerate() {
        let out_ch = base * mult as f64;
        for _ in 0..cfg.num_res_blocks {
            ch = out_ch;
            let feat = b * ch * h * w * act_bytes;
            let live_stash: f64 = stash.iter().sum::<f64>() * b * act_bytes;
            visit_feature(live_stash, feat, &mut peak_live);
            if cfg.attn_levels.contains(&i) {
                visit_attention(feat, h * w, h * w, &mut peak_attn, live_stash, &mut peak_live);
                if cfg.context_dim.is_some() {
                    visit_attention(
                        feat,
                        h * w,
                        ctx_len as f64,
                        &mut peak_attn,
                        live_stash,
                        &mut peak_live,
                    );
                }
            }
            stash.push(ch * h * w);
        }
        if i != levels - 1 {
            h = (h / 2.0).ceil();
            w = (w / 2.0).ceil();
            stash.push(ch * h * w);
        }
    }

    // Mid block (deepest resolution, full stash alive).
    let live_stash: f64 = stash.iter().sum::<f64>() * b * act_bytes;
    let feat = b * ch * h * w * act_bytes;
    visit_feature(live_stash, feat, &mut peak_live);
    if !cfg.attn_levels.is_empty() || cfg.context_dim.is_some() {
        visit_attention(feat, h * w, h * w, &mut peak_attn, live_stash, &mut peak_live);
    }

    for (i, &mult) in cfg.channel_mults.iter().enumerate().rev() {
        let out_ch = base * mult as f64;
        for _ in 0..cfg.num_res_blocks + 1 {
            let skip = stash.pop().unwrap_or(0.0);
            let live_stash: f64 = stash.iter().sum::<f64>() * b * act_bytes;
            let feat = b * (ch + skip / (h * w).max(1.0) * (h * w)) * act_bytes; // concat input
            let feat = feat.max(b * out_ch * h * w * act_bytes);
            ch = out_ch;
            visit_feature(live_stash, feat, &mut peak_live);
            if cfg.attn_levels.contains(&i) {
                visit_attention(feat, h * w, h * w, &mut peak_attn, live_stash, &mut peak_live);
            }
        }
        if i != 0 {
            h *= 2.0;
            w *= 2.0;
        }
    }

    MemoryReport { weights, activations: peak_live, attention: peak_attn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::{sd_scale_config, sd_scale_input, SD_CONTEXT_LEN};

    fn sd_mem(batch: usize, wb: f64, ab: f64) -> MemoryReport {
        peak_memory(&sd_scale_config(), sd_scale_input(), batch, SD_CONTEXT_LEN, wb, ab)
    }

    #[test]
    fn batch16_fp32_lands_in_tens_of_gib() {
        // Paper Fig. 5: 54.9 GB peak at batch 16 on an 80 GB A100.
        let m = sd_mem(16, 4.0, 4.0);
        assert!(
            (15.0..120.0).contains(&m.total_gib()),
            "batch-16 estimate {:.1} GiB",
            m.total_gib()
        );
    }

    #[test]
    fn batch1_fp32_lands_in_single_digit_gib() {
        // Paper: 8.37 GB at batch 1.
        let m = sd_mem(1, 4.0, 4.0);
        assert!((1.0..20.0).contains(&m.total_gib()), "batch-1 estimate {:.1} GiB", m.total_gib());
    }

    #[test]
    fn attention_dominates_at_large_batch() {
        // §III: "most of the memory consumed is largely due to ... the
        // attention layers".
        let m = sd_mem(16, 4.0, 4.0);
        assert!(m.attention > m.total() * 0.4, "attention share {:.2}", m.attention / m.total());
    }

    #[test]
    fn attention_transient_matches_paper_example() {
        // Paper: the (256, 4096, 4096) attention tensor needs ≥ 17 GB in
        // FP32 at batch 16 (256 = 16 batch × 16 heads in their count; we
        // model heads=8, so expect the same order).
        let m = sd_mem(16, 4.0, 4.0);
        let gib = m.attention / (1024f64 * 1024.0 * 1024.0);
        assert!((4.0..80.0).contains(&gib), "attention transient {gib:.1} GiB");
    }

    #[test]
    fn memory_is_monotone_in_batch() {
        let mut last = 0.0;
        for batch in [1, 2, 4, 8, 16] {
            let t = sd_mem(batch, 4.0, 4.0).total();
            assert!(t > last, "not monotone at batch {batch}");
            last = t;
        }
    }

    #[test]
    fn quantization_shrinks_memory_as_paper_claims() {
        // §III: "This VRAM requirement could be reduced by 4× and 8× by
        // quantizing data values to FP8 and FP4".
        let fp32 = sd_mem(16, 4.0, 4.0).total();
        let fp8 = sd_mem(16, 1.0, 1.0).total();
        let fp4 = sd_mem(16, 0.5, 0.5).total();
        let r8 = fp32 / fp8;
        let r4 = fp32 / fp4;
        assert!((3.5..4.5).contains(&r8), "FP8 reduction {r8:.2}");
        assert!((7.0..9.0).contains(&r4), "FP4 reduction {r4:.2}");
    }
}
