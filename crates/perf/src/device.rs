//! Roofline device presets calibrated to the paper's hardware.
//!
//! §I of the paper motivates FP quantization with the observation that on
//! modern accelerators *integer and floating-point operations of the same
//! bitwidth have equal peak throughput* (H100: 2000 TFLOPS FP8 = 2000 TOPS
//! INT8; Blackwell adds FP4). The presets encode exactly that.

/// Number formats with distinct peak-throughput/footprint classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NumberFormat {
    /// 32-bit float (the full-precision baseline).
    Fp32,
    /// 16-bit float.
    Fp16,
    /// 8-bit float (E4M3/E5M2-class).
    Fp8,
    /// 8-bit integer.
    Int8,
    /// 4-bit float.
    Fp4,
    /// 4-bit integer.
    Int4,
}

impl NumberFormat {
    /// Bytes per element.
    pub fn bytes(&self) -> f64 {
        match self {
            NumberFormat::Fp32 => 4.0,
            NumberFormat::Fp16 => 2.0,
            NumberFormat::Fp8 | NumberFormat::Int8 => 1.0,
            NumberFormat::Fp4 | NumberFormat::Int4 => 0.5,
        }
    }
}

/// A roofline device model.
#[derive(Clone, Debug)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Peak FP32 throughput (FLOP/s).
    pub fp32_flops: f64,
    /// Peak FP16 throughput (FLOP/s).
    pub fp16_flops: f64,
    /// Peak 8-bit throughput — identical for FP8 and INT8 (OP/s).
    pub bit8_flops: f64,
    /// Peak 4-bit throughput — identical for FP4 and INT4 (OP/s).
    pub bit4_flops: f64,
    /// Memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Fixed per-layer overhead (kernel launch / framework dispatch), s.
    pub launch_overhead: f64,
    /// Sustained fraction of peak for dense GEMM-class work.
    pub gemm_efficiency: f64,
    /// Sustained fraction of peak for elementwise/memory-bound work.
    pub elementwise_efficiency: f64,
    /// Fraction of peak memory bandwidth that elementwise kernels
    /// (norms, activations) actually achieve. Eager-framework norm
    /// kernels make several strided passes and sustain only a small
    /// fraction of HBM bandwidth — this is what makes Norm+SiLU ≈ 25% of
    /// GPU latency in the paper's Fig. 4 despite their tiny FLOP count.
    pub elementwise_bw_fraction: f64,
}

impl Device {
    /// Peak throughput for a format.
    pub fn peak_for(&self, fmt: NumberFormat) -> f64 {
        match fmt {
            NumberFormat::Fp32 => self.fp32_flops,
            NumberFormat::Fp16 => self.fp16_flops,
            NumberFormat::Fp8 | NumberFormat::Int8 => self.bit8_flops,
            NumberFormat::Fp4 | NumberFormat::Int4 => self.bit4_flops,
        }
    }

    /// A V100-class GPU (the paper's §III measurement platform):
    /// 15.7 TFLOPS FP32, 125 TFLOPS FP16 tensor cores, 900 GB/s HBM2.
    /// V100 has no 8-/4-bit tensor cores; those rates fall back to FP16.
    pub fn v100_like() -> Self {
        Device {
            name: "V100-class GPU".into(),
            fp32_flops: 15.7e12,
            fp16_flops: 125e12,
            bit8_flops: 125e12,
            bit4_flops: 125e12,
            mem_bw: 900e9,
            launch_overhead: 6e-6,
            gemm_efficiency: 0.45,
            elementwise_efficiency: 0.08,
            elementwise_bw_fraction: 0.08,
        }
    }

    /// An A100-class GPU (the paper's Fig. 5 memory platform): 19.5 TFLOPS
    /// FP32, 312 TFLOPS FP16, 624 TOPS INT8, 2.0 TB/s, 80 GB.
    pub fn a100_like() -> Self {
        Device {
            name: "A100-class GPU".into(),
            fp32_flops: 19.5e12,
            fp16_flops: 312e12,
            bit8_flops: 624e12,
            bit4_flops: 624e12,
            mem_bw: 2.0e12,
            launch_overhead: 5e-6,
            gemm_efficiency: 0.5,
            elementwise_efficiency: 0.1,
            elementwise_bw_fraction: 0.08,
        }
    }

    /// An H100-class GPU: the paper's headline premise — 2000 TFLOPS FP8
    /// **equal to** 2000 TOPS INT8 (§I).
    pub fn h100_like() -> Self {
        Device {
            name: "H100-class GPU".into(),
            fp32_flops: 67e12,
            fp16_flops: 1000e12,
            bit8_flops: 2000e12,
            bit4_flops: 2000e12,
            mem_bw: 3.35e12,
            launch_overhead: 4e-6,
            gemm_efficiency: 0.5,
            elementwise_efficiency: 0.12,
            elementwise_bw_fraction: 0.10,
        }
    }

    /// A Blackwell-class GPU: adds native FP4 at 2× the FP8 rate (§I).
    pub fn blackwell_like() -> Self {
        Device {
            name: "Blackwell-class GPU".into(),
            fp32_flops: 80e12,
            fp16_flops: 2250e12,
            bit8_flops: 4500e12,
            bit4_flops: 9000e12,
            mem_bw: 8e12,
            launch_overhead: 4e-6,
            gemm_efficiency: 0.5,
            elementwise_efficiency: 0.12,
            elementwise_bw_fraction: 0.10,
        }
    }

    /// A Xeon-Gold-5115-class CPU (the paper's CPU platform): 10 cores ×
    /// 2.4 GHz × AVX-512 FMA ≈ 0.38 TFLOPS FP32, ~100 GB/s DDR4.
    pub fn xeon_like() -> Self {
        Device {
            name: "Xeon-Gold-class CPU".into(),
            fp32_flops: 0.38e12,
            fp16_flops: 0.38e12,
            bit8_flops: 0.76e12,
            bit4_flops: 0.76e12,
            mem_bw: 100e9,
            launch_overhead: 0.5e-6,
            gemm_efficiency: 0.35,
            elementwise_efficiency: 0.5,
            elementwise_bw_fraction: 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_bitwidth_equal_throughput_premise() {
        // The paper's core hardware argument (§I): same-bitwidth FP and
        // INT rates are identical on the modeled accelerators.
        for d in [Device::h100_like(), Device::a100_like(), Device::blackwell_like()] {
            assert_eq!(d.peak_for(NumberFormat::Fp8), d.peak_for(NumberFormat::Int8), "{}", d.name);
            assert_eq!(d.peak_for(NumberFormat::Fp4), d.peak_for(NumberFormat::Int4), "{}", d.name);
        }
    }

    #[test]
    fn footprint_halves_with_bitwidth() {
        assert_eq!(NumberFormat::Fp32.bytes(), 4.0);
        assert_eq!(NumberFormat::Fp8.bytes(), 1.0);
        assert_eq!(NumberFormat::Int8.bytes(), 1.0);
        assert_eq!(NumberFormat::Fp4.bytes(), 0.5);
    }

    #[test]
    fn gpu_vastly_outclasses_cpu() {
        let gpu = Device::v100_like();
        let cpu = Device::xeon_like();
        let ratio = gpu.peak_for(NumberFormat::Fp32) / cpu.peak_for(NumberFormat::Fp32);
        assert!(ratio > 20.0 && ratio < 100.0, "FP32 peak ratio {ratio}");
    }
}
