//! Figure 4 — inference-latency breakdown of the (SD-scale) U-Net across
//! layer types, on a CPU and a GPU, at batch sizes 1 and 8 — plus the
//! §III headline measurements (U-Net dominance, GPU/CPU speedups).
//!
//! Paper reference: conv + linear dominate; norm + SiLU ≈ 25% on GPU but
//! negligible on CPU; GPU 31× / 72× faster at batch 1 / 8; U-Net is 6.1 s
//! of the 6.6 s total.

use fpdq_bench::{print_table, time_unet_forward, tiny_quantized_unet};
use fpdq_core::PtqConfig;
use fpdq_kernels::{pack_unet, unpack_unet};
use fpdq_perf::census::{sd_scale_config, sd_scale_input, SD_CONTEXT_LEN};
use fpdq_perf::{census, latency, Device, LayerClass, NumberFormat};

fn main() {
    let cfg = sd_scale_config();
    let devices = [Device::xeon_like(), Device::v100_like()];
    let batches = [1usize, 8];

    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for device in &devices {
        for &batch in &batches {
            let c = census(&cfg, sd_scale_input(), batch, SD_CONTEXT_LEN);
            let report = latency(&c, device, NumberFormat::Fp32, NumberFormat::Fp32);
            let mut row = vec![format!("{} b={batch}", device.name)];
            for class in LayerClass::ALL {
                row.push(format!("{:.1}%", 100.0 * report.share_of(class)));
            }
            row.push(format!("{:.3}s", report.total));
            rows.push(row);
            totals.push((device.name.clone(), batch, report.total));
        }
    }
    print_table(
        "Figure 4: U-Net per-step latency breakdown by layer type (normalised; total per step at right)",
        &["Platform", "Conv2d", "Linear", "Norm", "SiLU", "Attn", "total"],
        &rows,
    );

    // §III headline numbers.
    let step = |name: &str, b: usize| {
        totals.iter().find(|(n, bb, _)| n.starts_with(name) && *bb == b).unwrap().2
    };
    let gpu1 = step("V100", 1);
    let cpu1 = step("Xeon", 1);
    let gpu8 = step("V100", 8);
    let cpu8 = step("Xeon", 8);
    println!("\nSection III headline estimates (50 denoising steps, batch 1):");
    println!("  U-Net total on GPU: {:.1}s  (paper measures 6.1s of 6.6s end-to-end)", 50.0 * gpu1);
    println!(
        "  GPU speedup over CPU: {:.0}x at batch 1, {:.0}x at batch 8 (paper: 31x / 72x)",
        cpu1 / gpu1,
        cpu8 / gpu8
    );
    let pass = (5.0..150.0).contains(&(cpu1 / gpu1)) && cpu8 / gpu8 > cpu1 / gpu1;
    println!("shape checks: {}", if pass { "PASS" } else { "WARN" });

    // Measured section: the real bit-packed engine (not the analytic
    // model) on a tiny substrate U-Net — fake-quantized dense execution
    // vs packed fused weight+activation kernels, per forward.
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("FP8/FP8", PtqConfig::fp(8, 8)),
        ("FP4/FP8", PtqConfig::fp(4, 8).without_rounding_learning()),
    ] {
        let (unet, report) = tiny_quantized_unet(&cfg);
        let fake = time_unet_forward(&unet, 5);
        let pack = pack_unet(&unet, &report);
        let packed = time_unet_forward(&unet, 5);
        unpack_unet(&unet);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}ms", fake * 1e3),
            format!("{:.2}ms", packed * 1e3),
            format!("{:.2}x", fake / packed),
            format!("{}/{}", pack.fused_act_layers(), pack.layers.len()),
        ]);
    }
    print_table(
        "Figure 4 (measured): real packed engine vs fake-quantized dense, per U-Net forward",
        &["Config", "fake-q", "packed", "speedup", "fused"],
        &rows,
    );
}
