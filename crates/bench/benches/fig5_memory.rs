//! Figure 5 — peak inference memory of the SD-scale U-Net vs batch size,
//! plus the §III quantization-reduction claim (4× at FP8, 8× at FP4).
//!
//! Paper reference: 8.37 GB at batch 1 rising to 54.9 GB at batch 16 on an
//! 80 GB A100, dominated by attention score tensors.

use fpdq_bench::{print_table, tiny_quantized_unet};
use fpdq_core::PtqConfig;
use fpdq_kernels::pack_unet;
use fpdq_perf::census::{sd_scale_config, sd_scale_input, SD_CONTEXT_LEN};
use fpdq_perf::peak_memory;

fn main() {
    let cfg = sd_scale_config();
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for batch in [1usize, 2, 4, 8, 16] {
        let fp32 = peak_memory(&cfg, sd_scale_input(), batch, SD_CONTEXT_LEN, 4.0, 4.0);
        let fp8 = peak_memory(&cfg, sd_scale_input(), batch, SD_CONTEXT_LEN, 1.0, 1.0);
        let fp4 = peak_memory(&cfg, sd_scale_input(), batch, SD_CONTEXT_LEN, 0.5, 0.5);
        rows.push(vec![
            format!("batch {batch}"),
            format!("{:.2}", fp32.total_gib()),
            format!("{:.1}%", 100.0 * fp32.attention / fp32.total()),
            format!("{:.2}", fp8.total_gib()),
            format!("{:.2}", fp4.total_gib()),
        ]);
        series.push((batch, fp32.total_gib(), fp8.total_gib(), fp4.total_gib()));
    }
    print_table(
        "Figure 5: peak inference memory (GiB) of the SD-scale U-Net",
        &["Batch", "FP32", "attn%", "FP8", "FP4"],
        &rows,
    );

    let b1 = series[0].1;
    let b16 = series.last().unwrap().1;
    println!("\npaper anchors: 8.37 GB at batch 1, 54.9 GB at batch 16 (A100-80GB)");
    println!("model:         {b1:.2} GiB at batch 1, {b16:.2} GiB at batch 16");
    let (_, fp32_16, fp8_16, fp4_16) = *series.last().unwrap();
    println!(
        "quantization reduction at batch 16: FP8 {:.1}x, FP4 {:.1}x (paper claims 4x / 8x)",
        fp32_16 / fp8_16,
        fp32_16 / fp4_16
    );
    let pass = b16 > 4.0 * b1 && (fp32_16 / fp8_16) > 3.5 && (fp32_16 / fp4_16) > 7.0;
    println!("shape checks: {}", if pass { "PASS" } else { "WARN" });

    // Measured section: real bit-packed weight payloads (not the analytic
    // model) on a tiny substrate U-Net — §III's 4×/8× weight-memory
    // claim on actual packed storage.
    let mut rows = Vec::new();
    let mut measured_pass = true;
    for (label, cfg, want) in [
        ("FP8/FP8", PtqConfig::fp(8, 8), 4.0f32),
        ("FP4/FP8", PtqConfig::fp(4, 8).without_rounding_learning(), 8.0),
    ] {
        let (unet, report) = tiny_quantized_unet(&cfg);
        let pack = pack_unet(&unet, &report);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", pack.dense_bytes() as f32 / 1024.0),
            format!("{:.1}", pack.payload_bytes() as f32 / 1024.0),
            format!("{:.2}x", pack.compression()),
            format!("{want:.0}x"),
        ]);
        measured_pass &= (pack.compression() - want).abs() < 0.5;
    }
    print_table(
        "Figure 5 (measured): real packed weight payloads (KiB) vs dense FP32",
        &["Config", "dense", "packed", "ratio", "claim"],
        &rows,
    );
    println!("measured packed-storage checks: {}", if measured_pass { "PASS" } else { "WARN" });
}
