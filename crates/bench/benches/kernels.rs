//! Criterion microbenchmarks over the quantized kernels: packed
//! encode/decode, dequantize-on-the-fly GEMM vs dense FP32 GEMM, and the
//! sparsity-exploiting kernels over the zero patterns the paper's
//! quantizer creates (§VI-G).
//!
//! The `pack` and `gemm` groups carry explicit before/after pairs: the
//! `*_bitloop` / `*_rowwise_seed` entries re-run the pre-optimisation
//! implementations (per-bit unpacking; row-at-a-time decode + dot) so the
//! LUT-decode and tiled-kernel speedups can be read off one run.

use criterion::{criterion_group, Criterion};
use fpdq_core::{FpFormat, IntFormat, PanelQuantizer, TensorQuantizer};
use fpdq_kernels::packed::unpack_bits_range_bitloop;
use fpdq_kernels::{
    gemm_packed_fp, gemm_packed_fused_as, CsrWeights, PackedFpTensor, PackedIntTensor,
    TwoFourWeights,
};
use fpdq_tensor::matmul::{dot, gemm_nt_serial_with_as, NT_NR};
use fpdq_tensor::parallel::parallel_rows;
use fpdq_tensor::simd;
use fpdq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The seed implementation of the packed-FP GEMM: decode one weight row
/// at a time through the per-bit unpack loop (allocating per row, as the
/// original `decode_row` did), then dot it against every activation row.
/// Kept as the baseline side of the `gemm` group's tiled-vs-seed
/// comparison.
fn gemm_packed_fp_rowwise_seed(a: &Tensor, w: &PackedFpTensor, payload: &[u8]) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = w.dims()[0];
    let bits = w.format().total_bits();
    let mut out = vec![0.0f32; m * n];
    parallel_rows(&mut out, n, m, 4, |row_start, chunk| {
        for (r, col) in chunk.chunks_mut(m).enumerate() {
            let codes = unpack_bits_range_bitloop(payload, bits, (row_start + r) * k, k);
            let wrow: Vec<f32> = codes.iter().map(|&c| w.decode_code(c)).collect();
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = dot(&a.data()[i * k..(i + 1) * k], &wrow);
            }
        }
    });
    Tensor::from_vec(out, &[n, m]).transpose()
}

/// Strips the serialisation header off [`PackedFpTensor::to_bytes`],
/// leaving the raw packed payload.
fn payload_of(w: &PackedFpTensor, elems: usize) -> Vec<u8> {
    let bytes = w.to_bytes();
    let payload_len = (elems * w.format().total_bits() as usize).div_ceil(8);
    bytes[bytes.len() - payload_len..].to_vec()
}

const M: usize = 32;
const K: usize = 256;
const N: usize = 256;

fn rand_mat(r: usize, c: usize, seed: u64) -> Tensor {
    Tensor::randn(&[r, c], &mut StdRng::seed_from_u64(seed))
}

fn sparse_mat(r: usize, c: usize, keep: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[r, c], &mut rng).zip_map(
        &Tensor::rand_uniform(&[r, c], 0.0, 1.0, &mut rng),
        |v, u| if u < keep { v } else { 0.0 },
    )
}

fn bench_quantize(c: &mut Criterion) {
    let x = rand_mat(N, K, 1);
    let fp8 = FpFormat::new(4, 3);
    let fp4 = FpFormat::new(2, 1);
    let int8 = IntFormat::fit(&x, 8);
    let mut g = c.benchmark_group("quantize");
    g.bench_function("fp8_e4m3", |b| b.iter(|| black_box(fp8.quantize(&x))));
    g.bench_function("fp4_e2m1", |b| b.iter(|| black_box(fp4.quantize(&x))));
    g.bench_function("int8", |b| b.iter(|| black_box(int8.quantize(&x))));
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let w = rand_mat(N, K, 2);
    let fp8 = FpFormat::new(4, 3);
    let fp4 = FpFormat::new(2, 1);
    let mut g = c.benchmark_group("pack");
    g.bench_function("encode_fp8", |b| b.iter(|| black_box(PackedFpTensor::encode(&w, fp8))));
    g.bench_function("encode_fp4", |b| b.iter(|| black_box(PackedFpTensor::encode(&w, fp4))));
    let packed8 = PackedFpTensor::encode(&w, fp8);
    let packed4 = PackedFpTensor::encode(&w, fp4);
    g.bench_function("decode_fp8", |b| b.iter(|| black_box(packed8.decode())));
    g.bench_function("decode_fp4", |b| b.iter(|| black_box(packed4.decode())));
    // Before/after: the seed per-bit decode path vs the byte-LUT path.
    g.bench_function("decode_fp8_bitloop", |b| b.iter(|| black_box(packed8.decode_via_bitloop())));
    g.bench_function("decode_fp4_bitloop", |b| b.iter(|| black_box(packed4.decode_via_bitloop())));
    let payload4 = payload_of(&packed4, N * K);
    g.bench_function("unpack_bits_fp4", |b| {
        b.iter(|| black_box(fpdq_kernels::packed::unpack_bits(&payload4, 4, N * K)))
    });
    g.bench_function("unpack_bits_fp4_bitloop", |b| {
        b.iter(|| black_box(unpack_bits_range_bitloop(&payload4, 4, 0, N * K)))
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let a = rand_mat(M, K, 3);
    let w = rand_mat(N, K, 4);
    let fp8 = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
    let fp4 = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
    let int8 = PackedIntTensor::encode(&w, IntFormat::fit(&w, 8));
    let act8 = TensorQuantizer::Fp(FpFormat::new(4, 3));
    let mut g = c.benchmark_group("gemm_32x256x256");
    g.bench_function("dense_fp32", |b| b.iter(|| black_box(a.matmul_nt(&w))));
    g.bench_function("packed_fp8_w", |b| b.iter(|| black_box(gemm_packed_fp(&a, &fp8, None))));
    g.bench_function("packed_fp4_w", |b| b.iter(|| black_box(gemm_packed_fp(&a, &fp4, None))));
    g.bench_function("packed_fp8_wa", |b| {
        b.iter(|| black_box(gemm_packed_fp(&a, &fp8, Some(&act8))))
    });
    g.bench_function("packed_int8_w", |b| {
        b.iter(|| black_box(fpdq_kernels::gemm_packed_int(&a, &int8, None)))
    });
    // Per-ISA pairs (scalar + every SIMD path this machine supports) so
    // the runtime-dispatch speedup can be read off a single run: the raw
    // serial NT micro-kernel, and the full fused W+A packed GEMM.
    let pq8 = PanelQuantizer::per_tensor(&act8);
    for &isa in simd::available() {
        let mut c_out = vec![0.0f32; M * N];
        let mut bp = vec![0.0f32; K * NT_NR];
        g.bench_function(format!("matmul_nt_serial_{}", isa.name()), |b| {
            b.iter(|| {
                gemm_nt_serial_with_as(isa, a.data(), w.data(), &mut c_out, M, K, N, &mut bp);
                black_box(c_out[0])
            })
        });
        g.bench_function(format!("packed_fp8_wa_{}", isa.name()), |b| {
            b.iter(|| black_box(gemm_packed_fused_as(&a, &fp8, Some(&pq8), isa)))
        });
    }
    // Before/after: the seed row-at-a-time kernel vs the tiled one above.
    let (payload8, payload4) = (payload_of(&fp8, N * K), payload_of(&fp4, N * K));
    g.bench_function("packed_fp8_w_rowwise_seed", |b| {
        b.iter(|| black_box(gemm_packed_fp_rowwise_seed(&a, &fp8, &payload8)))
    });
    g.bench_function("packed_fp4_w_rowwise_seed", |b| {
        b.iter(|| black_box(gemm_packed_fp_rowwise_seed(&a, &fp4, &payload4)))
    });
    g.finish();
}

fn bench_gemm_batched(c: &mut Criterion) {
    // Batched multi-image activation matrices (m = batch × 4 rows, the
    // projection/time-embedding shape where a batch-1 step is *decode-
    // bound*: expanding the 256×256 packed weight costs more than the
    // 4-row product consumes) against one weight: per-image cost falls
    // with the batch as the once-per-call weight decode amortises — the
    // packed engine's serving-scale regime. Per-image throughput =
    // entry time / batch.
    const ROWS_PER_IMAGE: usize = 4;
    let w = rand_mat(N, K, 9);
    let fp8 = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
    let act8 = TensorQuantizer::Fp(FpFormat::new(4, 3));
    let mut g = c.benchmark_group("gemm_batched_4rows_x256x256");
    for batch in [1usize, 4, 8] {
        let a = rand_mat(batch * ROWS_PER_IMAGE, K, 10 + batch as u64);
        g.bench_function(format!("packed_fp8_wa_batch{batch}"), |b| {
            b.iter(|| black_box(gemm_packed_fp(&a, &fp8, Some(&act8))))
        });
    }
    // A narrow layer (n = 32) at batch scale exercises the
    // column-parallel regime.
    let wn = rand_mat(32, K, 11);
    let fp8n = PackedFpTensor::encode(&wn, FpFormat::new(4, 3));
    let an = rand_mat(8 * M, K, 12);
    g.bench_function("packed_fp8_wa_narrow_n32_batch8", |b| {
        b.iter(|| black_box(gemm_packed_fp(&an, &fp8n, Some(&act8))))
    });
    g.finish();
}

/// The seed packed-conv implementation (pre-implicit-GEMM): decode the
/// whole filter bank, materialise the full `[ckk, oh·ow]` im2col matrix
/// per image, and run the scalar NN `gemm_serial` over it. Kept as the
/// baseline side of the conv groups' before/after comparison (fused act
/// quant modelled by its bit-exact equivalent, quantize-first).
fn conv2d_packed_im2col_seed(
    x: &Tensor,
    w: &PackedFpTensor,
    spec: fpdq_tensor::conv::Conv2dSpec,
    act: &TensorQuantizer,
) -> Tensor {
    use fpdq_tensor::conv::im2col_into;
    use fpdq_tensor::matmul::gemm_serial;
    let xq = act.quantize(x);
    let (n, c, h, hw) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let wd = w.dims();
    let (o, kh, kw) = (wd[0], wd[2], wd[3]);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(hw, kw);
    let (ckk, ohow, chw) = (c * kh * kw, oh * ow, c * h * hw);
    let filters = w.decode();
    let mut out = vec![0.0f32; n * o * ohow];
    let mut cols = vec![0.0f32; ckk * ohow];
    for (batch, obatch) in out.chunks_mut(o * ohow).enumerate() {
        let img = &xq.data()[batch * chw..(batch + 1) * chw];
        im2col_into(img, c, h, hw, kh, kw, spec, &mut cols);
        gemm_serial(filters.data(), &cols, obatch, o, ckk, ohow);
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

fn bench_conv_batched(c: &mut Criterion) {
    use fpdq_kernels::conv2d_packed_fp;
    use fpdq_tensor::conv::Conv2dSpec;
    let mut rng = StdRng::seed_from_u64(13);
    let w = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let spec = Conv2dSpec::new(1, 1);
    let fp8 = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
    let act8 = TensorQuantizer::Fp(FpFormat::new(4, 3));
    let mut g = c.benchmark_group("conv_batched_16x16x16_to_32ch");
    for batch in [1usize, 4, 8] {
        let x = Tensor::randn(&[batch, 16, 16, 16], &mut rng);
        g.bench_function(format!("packed_fp8_wa_batch{batch}"), |b| {
            b.iter(|| black_box(conv2d_packed_fp(&x, &fp8, None, spec, Some(&act8))))
        });
        // Before/after: the seed materialised-im2col + scalar-GEMM path.
        g.bench_function(format!("packed_fp8_wa_batch{batch}_im2col_seed"), |b| {
            b.iter(|| black_box(conv2d_packed_im2col_seed(&x, &fp8, spec, &act8)))
        });
    }
    g.finish();

    // The deep-bottleneck shape (256→256 channels, 3×3 stride-2 on a 4×4
    // feature map, FP4 weights): the conv analog of the gemm_batched
    // projection shape, where a batch-1 call is *decode-bound* —
    // expanding the 256·256·9 packed filter bank through the nibble LUT
    // costs more than the 4 output pixels consume — so the once-per-call
    // decode amortising across the batch is the dominant effect. This is
    // the `conv_batched` amortization contract the CI bench-smoke asserts
    // (batch-8 per-image ≤ 0.6× batch-1).
    let wb = Tensor::randn(&[256, 256, 3, 3], &mut rng);
    let specb = Conv2dSpec::new(2, 1);
    let fp4b = PackedFpTensor::encode(&wb, FpFormat::new(2, 1));
    // CI asserts a ratio between the two entries below, so a single
    // 10ms smoke sample is too noise-prone: pin this group to min-of-5
    // samples even in smoke mode (~0.7s extra) and restore afterwards.
    let saved = c.clone();
    if std::env::var("FPDQ_BENCH_FAST").is_ok_and(|v| v == "1") {
        *c = Criterion::default()
            .sample_size(5)
            .warm_up_time(std::time::Duration::from_millis(50))
            .measurement_time(std::time::Duration::from_millis(250));
    }
    let mut g = c.benchmark_group("conv_batched_bottleneck_256ch_4x4_s2");
    for batch in [1usize, 8] {
        let x = Tensor::randn(&[batch, 256, 4, 4], &mut rng);
        g.bench_function(format!("packed_fp4_wa_batch{batch}"), |b| {
            b.iter(|| black_box(conv2d_packed_fp(&x, &fp4b, None, specb, Some(&act8))))
        });
    }
    g.finish();
    *c = saved;
}

fn bench_conv(c: &mut Criterion) {
    use fpdq_kernels::conv2d_packed_fp;
    use fpdq_tensor::conv::Conv2dSpec;
    let mut rng = StdRng::seed_from_u64(8);
    let x = Tensor::randn(&[4, 16, 16, 16], &mut rng);
    let w = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let spec = Conv2dSpec::new(1, 1);
    let fp8 = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
    let fp4 = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
    let mut g = c.benchmark_group("conv2d_4x16x16x16_to_32ch");
    g.bench_function("dense_fp32", |b| b.iter(|| black_box(x.conv2d(&w, None, spec))));
    g.bench_function("packed_fp8_w", |b| {
        b.iter(|| black_box(conv2d_packed_fp(&x, &fp8, None, spec, None)))
    });
    g.bench_function("packed_fp4_w", |b| {
        b.iter(|| black_box(conv2d_packed_fp(&x, &fp4, None, spec, None)))
    });
    g.finish();
}

/// The seed CSR kernel (pre-panel-packing): f32 values, activation-row
/// parallel, per-output scalar gather `acc += arow[col] * val` — no
/// quantized storage, no activation panel reuse, no SIMD. Kept as the
/// baseline side of the sparse group's before/after comparison.
struct CsrSeed {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrSeed {
    fn from_dense(w: &Tensor) -> Self {
        let (n, k) = (w.dim(0), w.dim(1));
        let (mut row_ptr, mut col_idx, mut values) = (vec![0usize], Vec::new(), Vec::new());
        for i in 0..n {
            for j in 0..k {
                let v = w.data()[i * k + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrSeed { n, row_ptr, col_idx, values }
    }

    fn gemm(&self, a: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let mut out = vec![0.0f32; m * self.n];
        let n = self.n;
        parallel_rows(&mut out, m, n, 4, |row_start, chunk| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let arow = &a.data()[(row_start + r) * k..(row_start + r + 1) * k];
                for (j, slot) in orow.iter_mut().enumerate() {
                    let (s, e) = (self.row_ptr[j], self.row_ptr[j + 1]);
                    let mut acc = 0.0f32;
                    for idx in s..e {
                        acc += arow[self.col_idx[idx] as usize] * self.values[idx];
                    }
                    *slot = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, self.n])
    }
}

/// The seed 2:4 kernel: f32 value pairs + metadata bytes, per-output
/// scalar gather (2 MACs per group). Baseline for `two_four_structured`.
struct TwoFourSeed {
    n: usize,
    k: usize,
    values: Vec<f32>,
    positions: Vec<u8>,
}

impl TwoFourSeed {
    fn prune(w: &Tensor) -> Self {
        let (n, k) = (w.dim(0), w.dim(1));
        let groups = n * k / 4;
        let (mut values, mut positions) = (Vec::new(), Vec::new());
        for g in 0..groups {
            let quad = &w.data()[g * 4..g * 4 + 4];
            let mut idx = [0usize, 1, 2, 3];
            idx.sort_by(|&a, &b| quad[b].abs().total_cmp(&quad[a].abs()));
            let mut keep = [idx[0], idx[1]];
            keep.sort_unstable();
            values.push(quad[keep[0]]);
            values.push(quad[keep[1]]);
            positions.push((keep[0] as u8) | ((keep[1] as u8) << 2));
        }
        TwoFourSeed { n, k, values, positions }
    }

    fn gemm(&self, a: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let groups_per_row = self.k / 4;
        let mut out = vec![0.0f32; m * self.n];
        let n = self.n;
        parallel_rows(&mut out, m, n, 4, |row_start, chunk| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let arow = &a.data()[(row_start + r) * k..(row_start + r + 1) * k];
                for (j, slot) in orow.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for g in 0..groups_per_row {
                        let gi = j * groups_per_row + g;
                        let meta = self.positions[gi];
                        let base = g * 4;
                        acc += arow[base + (meta & 0b11) as usize] * self.values[gi * 2];
                        acc += arow[base + ((meta >> 2) & 0b11) as usize] * self.values[gi * 2 + 1];
                    }
                    *slot = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, self.n])
    }
}

fn bench_sparse(c: &mut Criterion) {
    let a = rand_mat(M, K, 5);
    let fp8 = TensorQuantizer::Fp(FpFormat::new(4, 3));
    // CI asserts sparse ≤ dense ratios inside this group, so a single
    // 10ms smoke sample is too noise-prone: pin it to min-of-5 samples
    // in smoke mode (same pattern as the conv_batched contract group).
    let saved = c.clone();
    if std::env::var("FPDQ_BENCH_FAST").is_ok_and(|v| v == "1") {
        *c = Criterion::default()
            .sample_size(5)
            .warm_up_time(std::time::Duration::from_millis(50))
            .measurement_time(std::time::Duration::from_millis(250));
    }
    let mut g = c.benchmark_group("sparse_gemm_32x256x256");
    let dense_w = rand_mat(N, K, 7);
    g.bench_function("dense_reference", |b| b.iter(|| black_box(a.matmul_nt(&dense_w))));
    let mut csr01 = None;
    for keep in [0.5f32, 0.1, 0.01] {
        let w = sparse_mat(N, K, keep, 6);
        let csr = CsrWeights::from_dense(&w, &fp8);
        g.bench_function(format!("csr_density_{keep}"), |b| b.iter(|| black_box(csr.gemm(&a))));
        // Before/after: the seed f32 gather kernel on the same pattern.
        let seed = CsrSeed::from_dense(&w);
        g.bench_function(format!("csr_density_{keep}_seed"), |b| {
            b.iter(|| black_box(seed.gemm(&a)))
        });
        if keep == 0.1 {
            csr01 = Some(csr);
        }
    }
    let csr01 = csr01.expect("density 0.1 in sweep");
    let tf = TwoFourWeights::prune(&dense_w, &fp8);
    g.bench_function("two_four_structured", |b| b.iter(|| black_box(tf.gemm(&a))));
    let tf_seed = TwoFourSeed::prune(&dense_w);
    g.bench_function("two_four_structured_seed", |b| b.iter(|| black_box(tf_seed.gemm(&a))));
    // Per-ISA pairs (scalar + every SIMD path this machine supports), so
    // the sparse kernels' dispatch speedup reads off one run like the
    // dense group's.
    for &isa in simd::available() {
        g.bench_function(format!("csr_density_0.1_{}", isa.name()), |b| {
            b.iter(|| black_box(csr01.gemm_fused_as(&a, None, isa)))
        });
        g.bench_function(format!("two_four_{}", isa.name()), |b| {
            b.iter(|| black_box(tf.gemm_fused_as(&a, None, isa)))
        });
    }
    g.finish();
    *c = saved;

    // The batched serving shape (m = 256 stacked rows): sparse weight
    // reuse across many activation rows, where the shared quantized
    // activation panel bank amortises exactly like the dense engine's.
    let ab = rand_mat(8 * M, K, 15);
    let mut g = c.benchmark_group("sparse_gemm_batched_256x256x256");
    g.bench_function("dense_reference", |b| b.iter(|| black_box(ab.matmul_nt(&dense_w))));
    g.bench_function("csr_density_0.1", |b| b.iter(|| black_box(csr01.gemm(&ab))));
    g.bench_function("two_four_structured", |b| b.iter(|| black_box(tf.gemm(&ab))));
    g.finish();
}

/// Cold-start cost: what a fresh process pays before it can sample. The
/// container is the whole point of the `cold_start` group — loading a
/// packed `.fpdq` (`container_load`) must be dramatically cheaper than
/// re-deriving the model (`quantize_and_pack`), and `pack_write` prices
/// the crash-safe (temp + fsync + rename) container write itself.
fn bench_cold_start(c: &mut Criterion) {
    use fpdq_container::{container_bytes, load_bytes, save, SimPipeline};
    use fpdq_core::calib::{CalibPoint, CalibrationSet};
    use fpdq_core::{quantize_unet, PtqConfig, RoundingConfig};
    use fpdq_diffusion::{DdimSim, NoiseSchedule};
    use fpdq_nn::{UNet, UNetConfig};

    let mut rng = StdRng::seed_from_u64(21);
    let unet = UNet::new(UNetConfig::tiny(3), &mut rng);
    let points: Vec<CalibPoint> = (0..3)
        .map(|i| CalibPoint {
            x: Tensor::randn(&[1, 3, 8, 8], &mut rng),
            t: (i * 4) as f32,
            ctx: None,
        })
        .collect();
    let calib = CalibrationSet { init: points.clone(), rl: points };
    let mut cfg = PtqConfig::fp(8, 8);
    cfg.bias_candidates = 9;
    cfg.rounding = RoundingConfig { iters: 4, batch: 2, ..RoundingConfig::default() };
    let report = quantize_unet(&unet, &calib, &cfg, &mut StdRng::seed_from_u64(1));
    let pipeline = SimPipeline::Ddim(DdimSim {
        unet,
        schedule: NoiseSchedule::linear_scaled(12),
        channels: 3,
        image_size: 8,
    });
    let image = bytes::Bytes::from(container_bytes(&pipeline, &report).expect("container"));
    let dir = std::env::temp_dir().join("fpdq-bench-cold-start");
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let out = dir.join("tiny.fpdq");

    let mut g = c.benchmark_group("cold_start");
    // The no-container baseline: re-derive the quantized packed model.
    g.bench_function("quantize_and_pack", |b| {
        b.iter(|| {
            let unet = UNet::new(UNetConfig::tiny(3), &mut StdRng::seed_from_u64(21));
            let report = quantize_unet(&unet, &calib, &cfg, &mut StdRng::seed_from_u64(1));
            black_box(fpdq_kernels::pack_unet(&unet, &report))
        })
    });
    // The crash-safe container write (temp file + fsync + atomic rename).
    g.bench_function("pack_write", |b| b.iter(|| save(&out, &pipeline, &report).expect("save")));
    // The container fast path: validate + rebuild + install, zero-copy
    // payloads shared with the source buffer.
    g.bench_function("container_load", |b| {
        b.iter(|| black_box(load_bytes(image.clone()).expect("load")))
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// One classifier-free-guidance step on a packed conditional U-Net:
/// the folded single-call batch (`conditioning::eps_folded`, 2n rows,
/// one weight-decode pass) against the seed double forward (two
/// sequential n-row calls + mix — the pre-fold `SdSim` sampling loop).
/// The packed engine decodes each weight tile once per *call*, so the
/// fold halves the per-step decode cost; CI's bench smoke asserts the
/// folded entry wins per-image at batch 4.
fn bench_sd_cfg_step(c: &mut Criterion) {
    use fpdq_core::calib::{CalibPoint, CalibrationSet};
    use fpdq_core::{quantize_unet, PtqConfig, RoundingConfig};
    use fpdq_diffusion::{eps_folded, Conditioning};
    use fpdq_nn::{UNet, UNetConfig};

    let mut rng = StdRng::seed_from_u64(33);
    let unet = UNet::new(UNetConfig { context_dim: Some(8), ..UNetConfig::tiny(4) }, &mut rng);
    // A 4×4 latent keeps each call decode-bound (few output positions
    // per weight tile), which is exactly the regime the fold targets:
    // the packed engine re-decodes every weight once per *call*.
    let points: Vec<CalibPoint> = (0..3)
        .map(|i| CalibPoint {
            x: Tensor::randn(&[1, 4, 4, 4], &mut rng),
            t: (i * 4) as f32,
            ctx: Some(Tensor::randn(&[1, 8, 8], &mut rng)),
        })
        .collect();
    let calib = CalibrationSet { init: points.clone(), rl: points };
    let mut cfg = PtqConfig::fp(8, 8);
    cfg.bias_candidates = 9;
    cfg.rounding = RoundingConfig { iters: 4, batch: 2, ..RoundingConfig::default() };
    let report = quantize_unet(&unet, &calib, &cfg, &mut StdRng::seed_from_u64(1));
    fpdq_kernels::pack_unet(&unet, &report);

    // CI asserts a ratio between paired entries below; pin min-of-5
    // samples in smoke mode like the conv amortization group.
    let saved = c.clone();
    if std::env::var("FPDQ_BENCH_FAST").is_ok_and(|v| v == "1") {
        *c = Criterion::default()
            .sample_size(5)
            .warm_up_time(std::time::Duration::from_millis(50))
            .measurement_time(std::time::Duration::from_millis(250));
    }
    let mut g = c.benchmark_group("sd_cfg_step");
    let guidance = 3.0f32;
    for n in [1usize, 4] {
        let x = Tensor::randn(&[n, 4, 4, 4], &mut rng);
        let t = Tensor::from_vec(vec![5.0; n], &[n]);
        let cond = Tensor::randn(&[n, 8, 8], &mut rng);
        let null = Tensor::randn(&[1, 8, 8], &mut rng);
        let conds: Vec<Conditioning> = (0..n)
            .map(|i| Conditioning::guided(cond.narrow(0, i, 1), null.clone(), guidance))
            .collect();
        let refs: Vec<&Conditioning> = conds.iter().collect();
        g.bench_function(format!("folded_batch{n}"), |b| {
            b.iter(|| black_box(eps_folded(|x, t, ctx| unet.forward(x, t, ctx), &x, &t, &refs)))
        });
        // Before/after: the seed CFG loop — two sequential engine calls
        // per step (cond batch, then null batch), mixed outside.
        let null_n = Tensor::concat(&vec![&null; n], 0);
        g.bench_function(format!("double_forward_batch{n}_seed"), |b| {
            b.iter(|| {
                let e_cond = unet.forward(&x, &t, Some(&cond));
                let e_null = unet.forward(&x, &t, Some(&null_n));
                black_box(e_null.add(&e_cond.sub(&e_null).mul_scalar(guidance)))
            })
        });
    }
    g.finish();
    *c = saved;
}

fn configured() -> Criterion {
    // FPDQ_BENCH_FAST=1 is the CI smoke mode: one sample per benchmark,
    // minimal budgets — enough to prove every kernel still runs and the
    // JSON writer still works, without meaningful timing.
    if std::env::var("FPDQ_BENCH_FAST").is_ok_and(|v| v == "1") {
        Criterion::default()
            .sample_size(1)
            .warm_up_time(std::time::Duration::from_millis(5))
            .measurement_time(std::time::Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(800))
    }
}

criterion_group! {
    name = kernels;
    config = configured();
    targets = bench_quantize, bench_pack, bench_gemm, bench_gemm_batched, bench_conv,
        bench_conv_batched, bench_sparse, bench_cold_start, bench_sd_cfg_step
}

fn main() {
    kernels();
    // Machine-readable results (group/name -> ns/op) so the perf
    // trajectory is tracked across PRs. FPDQ_BENCH_JSON overrides the
    // file name; relative paths resolve against the workspace root
    // (cargo runs benches from the package directory). The `_meta`
    // object records which ISA the dispatched kernels actually ran
    // (scalar/avx2/neon) and whether FPDQ_FORCE_SCALAR pinned it, so
    // cross-PR and cross-machine numbers are comparable.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join(
        std::env::var("FPDQ_BENCH_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string()),
    );
    let meta = [
        ("isa", simd::active().name()),
        ("detected_isa", simd::detected().name()),
        ("force_scalar", if simd::force_scalar() { "1" } else { "0" }),
    ];
    match criterion::write_json_report_with_meta(&path, &meta) {
        Ok(()) => eprintln!("wrote {} (isa: {})", path.display(), simd::active().name()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
