//! Criterion microbenchmarks over the quantized kernels: packed
//! encode/decode, dequantize-on-the-fly GEMM vs dense FP32 GEMM, and the
//! sparsity-exploiting kernels over the zero patterns the paper's
//! quantizer creates (§VI-G).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fpdq_core::{FpFormat, IntFormat, TensorQuantizer};
use fpdq_kernels::{gemm_packed_fp, CsrWeights, PackedFpTensor, PackedIntTensor, TwoFourWeights};
use fpdq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const M: usize = 32;
const K: usize = 256;
const N: usize = 256;

fn rand_mat(r: usize, c: usize, seed: u64) -> Tensor {
    Tensor::randn(&[r, c], &mut StdRng::seed_from_u64(seed))
}

fn sparse_mat(r: usize, c: usize, keep: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[r, c], &mut rng).zip_map(
        &Tensor::rand_uniform(&[r, c], 0.0, 1.0, &mut rng),
        |v, u| if u < keep { v } else { 0.0 },
    )
}

fn bench_quantize(c: &mut Criterion) {
    let x = rand_mat(N, K, 1);
    let fp8 = FpFormat::new(4, 3);
    let fp4 = FpFormat::new(2, 1);
    let int8 = IntFormat::fit(&x, 8);
    let mut g = c.benchmark_group("quantize");
    g.bench_function("fp8_e4m3", |b| b.iter(|| black_box(fp8.quantize(&x))));
    g.bench_function("fp4_e2m1", |b| b.iter(|| black_box(fp4.quantize(&x))));
    g.bench_function("int8", |b| b.iter(|| black_box(int8.quantize(&x))));
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let w = rand_mat(N, K, 2);
    let fp8 = FpFormat::new(4, 3);
    let fp4 = FpFormat::new(2, 1);
    let mut g = c.benchmark_group("pack");
    g.bench_function("encode_fp8", |b| b.iter(|| black_box(PackedFpTensor::encode(&w, fp8))));
    g.bench_function("encode_fp4", |b| b.iter(|| black_box(PackedFpTensor::encode(&w, fp4))));
    let packed8 = PackedFpTensor::encode(&w, fp8);
    let packed4 = PackedFpTensor::encode(&w, fp4);
    g.bench_function("decode_fp8", |b| b.iter(|| black_box(packed8.decode())));
    g.bench_function("decode_fp4", |b| b.iter(|| black_box(packed4.decode())));
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let a = rand_mat(M, K, 3);
    let w = rand_mat(N, K, 4);
    let fp8 = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
    let fp4 = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
    let int8 = PackedIntTensor::encode(&w, IntFormat::fit(&w, 8));
    let act8 = TensorQuantizer::Fp(FpFormat::new(4, 3));
    let mut g = c.benchmark_group("gemm_32x256x256");
    g.bench_function("dense_fp32", |b| b.iter(|| black_box(a.matmul_nt(&w))));
    g.bench_function("packed_fp8_w", |b| b.iter(|| black_box(gemm_packed_fp(&a, &fp8, None))));
    g.bench_function("packed_fp4_w", |b| b.iter(|| black_box(gemm_packed_fp(&a, &fp4, None))));
    g.bench_function("packed_fp8_wa", |b| {
        b.iter(|| black_box(gemm_packed_fp(&a, &fp8, Some(&act8))))
    });
    g.bench_function("packed_int8_w", |b| {
        b.iter(|| black_box(fpdq_kernels::gemm_packed_int(&a, &int8, None)))
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    use fpdq_kernels::conv2d_packed_fp;
    use fpdq_tensor::conv::Conv2dSpec;
    let mut rng = StdRng::seed_from_u64(8);
    let x = Tensor::randn(&[4, 16, 16, 16], &mut rng);
    let w = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let spec = Conv2dSpec::new(1, 1);
    let fp8 = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
    let fp4 = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
    let mut g = c.benchmark_group("conv2d_4x16x16x16_to_32ch");
    g.bench_function("dense_fp32", |b| b.iter(|| black_box(x.conv2d(&w, None, spec))));
    g.bench_function("packed_fp8_w", |b| {
        b.iter(|| black_box(conv2d_packed_fp(&x, &fp8, None, spec, None)))
    });
    g.bench_function("packed_fp4_w", |b| {
        b.iter(|| black_box(conv2d_packed_fp(&x, &fp4, None, spec, None)))
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let a = rand_mat(M, K, 5);
    let mut g = c.benchmark_group("sparse_gemm_32x256x256");
    for keep in [0.5f32, 0.1, 0.01] {
        let w = sparse_mat(N, K, keep, 6);
        let csr = CsrWeights::from_dense(&w);
        g.bench_function(format!("csr_density_{keep}"), |b| {
            b.iter_batched(|| a.clone(), |a| black_box(csr.gemm(&a)), BatchSize::SmallInput)
        });
    }
    let dense_w = rand_mat(N, K, 7);
    g.bench_function("dense_reference", |b| b.iter(|| black_box(a.matmul_nt(&dense_w))));
    let tf = TwoFourWeights::prune(&dense_w);
    g.bench_function("two_four_structured", |b| b.iter(|| black_box(tf.gemm(&a))));
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = kernels;
    config = configured();
    targets = bench_quantize, bench_pack, bench_gemm, bench_conv, bench_sparse
}
criterion_main!(kernels);
