//! Figure 9 — qualitative SDXL-sim comparison: full precision vs FP8/FP8
//! vs INT8/INT8 on a fixed prompt and noise.
//!
//! Paper reference: the FP8 image closely resembles the full-precision
//! one; the INT8 image is vastly different and drops scene content.

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_data::ppm::{image_grid, save_ppm};
use fpdq_metrics::SimClip;
use fpdq_tensor::Tensor;

fn main() {
    let steps = t2i_steps();
    let dir = artifact_dir();
    let prompts: Vec<String> =
        vec!["a yellow cross in a dark room".into(), "a magenta ball in a bright room".into()];

    let fp32 = fresh_sdxl();
    let calib = calibrate_t2i(&fp32);
    let configs: Vec<(&str, Option<PtqConfig>)> = vec![
        ("full-precision", None),
        ("fp8_fp8", Some(PtqConfig::fp(8, 8))),
        ("int8_int8", Some(PtqConfig::int(8, 8))),
    ];

    let clip = SimClip::new();
    let mut cols: Vec<Vec<Tensor>> = Vec::new();
    let mut fp32_imgs: Option<Tensor> = None;
    let mut dist_to_fp32 = Vec::new();
    for (tag, cfg) in &configs {
        let pipeline = fresh_sdxl();
        if let Some(cfg) = cfg {
            apply_ptq(&pipeline.unet, &calib, cfg);
        }
        let imgs = generate_t2i(&pipeline, &prompts, steps);
        let score = clip.score_batch(&imgs, &prompts);
        if let Some(reference) = &fp32_imgs {
            let d = imgs.mse(reference);
            dist_to_fp32.push((*tag, d));
            println!("fig9: {tag:<16} clip-sim {score:.3}  mse-vs-fp32 {d:.4}");
        } else {
            println!("fig9: {tag:<16} clip-sim {score:.3}");
            fp32_imgs = Some(imgs.clone());
        }
        cols.push((0..prompts.len()).map(|i| imgs.narrow(0, i, 1).reshape(&[3, 16, 16])).collect());
    }
    for (row, prompt) in prompts.iter().enumerate() {
        let cells: Vec<Tensor> = cols.iter().map(|c| c[row].clone()).collect();
        let grid = image_grid(&cells, cells.len());
        let file = dir.join(format!("fig9_prompt{row}.ppm"));
        save_ppm(&grid, &file, 8).expect("write ppm");
        println!("fig9: wrote {} ({prompt}; cols: fp32/fp8/int8)", file.display());
    }
    // Paper's finding: FP8 stays closer to the FP32 image than INT8 does.
    let fp8 = dist_to_fp32.iter().find(|(t, _)| *t == "fp8_fp8").unwrap().1;
    let int8 = dist_to_fp32.iter().find(|(t, _)| *t == "int8_int8").unwrap().1;
    println!("\npixel distance to full precision: FP8 {fp8:.4} vs INT8 {int8:.4}");
    println!("shape checks: {}", if fp8 <= int8 { "PASS" } else { "WARN (INT8 closer than FP8)" });
}
