//! Ablations of the method's design choices (DESIGN.md §8):
//!
//! 1. bias-grid resolution (the paper settled on 111 candidates);
//! 2. searched per-tensor formats vs one fixed standard encoding;
//! 3. rounding-learning budget;
//! 4. what to quantize (weights only / activations only / both);
//! 5. Q-Diffusion's split quantization of concatenated skip inputs.
//!
//! All ablations score the quantized model by output-MSE against the
//! full-precision model on held-out calibration states — fast, and a
//! faithful proxy for the end-metric orderings.

use fpdq_bench::*;
use fpdq_core::{
    search_fp_format, CalibrationSet, FpFormat, PtqConfig, RoundingConfig, TensorQuantizer,
};
use fpdq_nn::UNet;
use fpdq_tensor::Tensor;

/// Output MSE of the (quantized) model vs reference outputs.
fn model_output_mse(unet: &UNet, calib: &CalibrationSet, reference: &[Tensor]) -> f32 {
    let mut sum = 0.0;
    for (p, r) in calib.init.iter().zip(reference) {
        let t = Tensor::from_vec(vec![p.t], &[1]);
        sum += unet.forward(&p.x, &t, p.ctx.as_ref()).mse(r);
    }
    sum / reference.len() as f32
}

fn reference_outputs(unet: &UNet, calib: &CalibrationSet) -> Vec<Tensor> {
    calib
        .init
        .iter()
        .map(|p| {
            let t = Tensor::from_vec(vec![p.t], &[1]);
            unet.forward(&p.x, &t, p.ctx.as_ref())
        })
        .collect()
}

fn quantized_mse(cfg: &PtqConfig, calib: &CalibrationSet, reference: &[Tensor]) -> f32 {
    let p = fresh_ldm();
    apply_ptq(&p.unet, calib, cfg);
    model_output_mse(&p.unet, calib, reference)
}

fn main() {
    let baseline = fresh_ldm();
    let calib = calibrate_uncond(&baseline.unet, &baseline.schedule, [4, 8, 8]);
    let reference = reference_outputs(&baseline.unet, &calib);

    // 1. Bias-grid resolution.
    println!("\n=== Ablation 1: bias-candidate grid resolution (FP4 weight search MSE on one conv tensor) ===");
    let mut w = None;
    baseline.unet.visit_quant_layers(&mut |l| {
        if l.qname() == "mid.res0.conv1" {
            w = Some(l.weight().value());
        }
    });
    let w = w.expect("probe layer");
    let mut last = f32::INFINITY;
    let mut monotone = true;
    for n in [3usize, 11, 37, 111, 333] {
        let r = search_fp_format(&[&w], 4, n);
        println!("  {n:>4} candidates: weight MSE {:.6e} ({})", r.mse, r.quantizer);
        monotone &= r.mse <= last + 1e-9;
        last = r.mse;
    }
    println!(
        "  diminishing returns beyond ~111 candidates: {}",
        if monotone { "PASS" } else { "WARN" }
    );

    // 2. Searched formats vs fixed E4M3 everywhere.
    println!("\n=== Ablation 2: searched per-tensor formats vs fixed standard E4M3 ===");
    let searched = quantized_mse(&PtqConfig::fp(8, 8), &calib, &reference);
    let fixed = {
        let p = fresh_ldm();
        let fixed_fmt = TensorQuantizer::Fp(FpFormat::new(4, 3));
        p.unet.visit_quant_layers(&mut |l| {
            l.weight().replace(fixed_fmt.quantize(&l.weight().value()));
            l.tap().borrow_mut().act_quant = Some(fixed_fmt.into_act_fn());
        });
        model_output_mse(&p.unet, &calib, &reference)
    };
    println!("  searched FP8/FP8 output MSE: {searched:.6e}");
    println!("  fixed E4M3/E4M3 output MSE : {fixed:.6e}");
    println!("  search wins: {}", if searched < fixed { "PASS" } else { "WARN" });

    // 3. Rounding-learning budget.
    println!("\n=== Ablation 3: rounding-learning budget (FP4/FP8 output MSE) ===");
    let mut rl_rows = Vec::new();
    for iters in [0usize, 30, 120] {
        let mut cfg = PtqConfig::fp(4, 8);
        if iters == 0 {
            cfg = cfg.without_rounding_learning();
        } else {
            cfg.rounding = RoundingConfig { iters, batch: 8, ..RoundingConfig::default() };
        }
        let mse = {
            let p = fresh_ldm();
            apply_ptq_with(&p.unet, &calib, &cfg);
            model_output_mse(&p.unet, &calib, &reference)
        };
        println!("  {iters:>4} RL iters: output MSE {mse:.6e}");
        rl_rows.push(mse);
    }
    println!(
        "  more RL budget helps: {}",
        if rl_rows.last().unwrap() < &rl_rows[0] { "PASS" } else { "WARN" }
    );

    // 4. What to quantize.
    println!("\n=== Ablation 4: weights-only vs activations-only vs both (FP8) ===");
    let mut wonly = PtqConfig::fp(8, 8);
    wonly.quantize_acts = false;
    let mut aonly = PtqConfig::fp(8, 8);
    aonly.quantize_weights = false;
    let w_mse = quantized_mse(&wonly, &calib, &reference);
    let a_mse = quantized_mse(&aonly, &calib, &reference);
    let both_mse = quantized_mse(&PtqConfig::fp(8, 8), &calib, &reference);
    println!(
        "  weights-only: {w_mse:.6e}\n  acts-only   : {a_mse:.6e}\n  both        : {both_mse:.6e}"
    );
    println!(
        "  both ≈ superposition of error sources: {}",
        if both_mse >= w_mse.max(a_mse) * 0.5 { "PASS" } else { "WARN" }
    );

    ablation_per_channel(&baseline);

    // 5. Split skip-connection quantization (Q-Diffusion trick).
    println!("\n=== Ablation 5: split quantization of concatenated skip inputs (INT8 acts) ===");
    let with_split = quantized_mse(&PtqConfig::int(8, 8), &calib, &reference);
    let without_split = {
        let mut cfg = PtqConfig::int(8, 8);
        cfg.split_skip_quant = false;
        quantized_mse(&cfg, &calib, &reference)
    };
    println!("  with split   : {with_split:.6e}");
    println!("  without split: {without_split:.6e}");
    println!(
        "  split helps (or is neutral): {}",
        if with_split <= without_split * 1.2 { "PASS" } else { "WARN" }
    );
}

/// Ablation 6 lives here: per-tensor vs per-channel weight formats.
fn ablation_per_channel(baseline: &fpdq_diffusion::LdmSim) {
    println!("\n=== Ablation 6: per-tensor vs per-channel weight formats (FP4, whole model) ===");
    let mut tensor_mse = 0.0f64;
    let mut channel_mse = 0.0f64;
    let mut elems = 0usize;
    baseline.unet.visit_quant_layers(&mut |l| {
        let w = l.weight().value();
        let pt = search_fp_format(&[&w], 4, 37);
        let (_, pc) = fpdq_core::search_fp_per_channel(&w, 4, 37);
        tensor_mse += pt.mse as f64 * w.numel() as f64;
        channel_mse += pc as f64 * w.numel() as f64;
        elems += w.numel();
    });
    let (pt, pc) = (tensor_mse / elems as f64, channel_mse / elems as f64);
    println!("  per-tensor weight MSE : {pt:.6e}  (1 bias/tensor metadata — the paper's choice)");
    println!("  per-channel weight MSE: {pc:.6e}  (1 bias+encoding per output channel)");
    println!("  per-channel never worse: {}", if pc <= pt * 1.001 { "PASS" } else { "WARN" });
}

/// Like `apply_ptq` but honouring the config's own rounding budget.
fn apply_ptq_with(unet: &UNet, calib: &CalibrationSet, cfg: &PtqConfig) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(CALIB_SEED + 1);
    fpdq_core::quantize_unet(unet, calib, cfg, &mut rng);
}
