//! Table IV — Stable-Diffusion-sim text-to-image evaluation under *both*
//! reference protocols:
//!
//! * the conventional protocol (reference = real captioned-scene images,
//!   the MS-COCO analogue), and
//! * the paper's **better methodology** (§VI-E): reference = the
//!   full-precision model's own samples on the same prompts and noise.
//!
//! Paper reference (Table IV): against MS-COCO all configs look alike
//! (integer even "wins"), which contradicts visual quality; against the
//! FP32 reference the ordering is revealed — FP8/FP8 ≫ INT8/INT8 and
//! FP4/FP8 ≈ INT8/INT8 with better sFID/P/R.

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_data::CaptionedScenes;
use fpdq_metrics::{evaluate, FeatureNet, QualityMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = t2i_samples();
    let steps = t2i_steps();
    let net = FeatureNet::for_size(16);
    let prompts = eval_prompts(n);
    let (real_reference, _, _) =
        CaptionedScenes::new().batch_captioned(n, &mut StdRng::seed_from_u64(7));

    let t0 = std::time::Instant::now();
    let fp32 = fresh_sd();
    let calib = calibrate_t2i(&fp32);
    eprintln!("[table4] calibration ready ({:.0}s)", t0.elapsed().as_secs_f32());
    let fp32_imgs = generate_t2i(&fp32, &prompts, steps);

    let mut configs = main_table_configs();
    configs.insert(
        4,
        ("FP4/FP8 no RL (Ours)".into(), Some(PtqConfig::fp(4, 8).without_rounding_learning())),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut vs_real: Vec<(String, QualityMetrics)> = Vec::new();
    let mut vs_fp32: Vec<(String, QualityMetrics)> = Vec::new();
    for (name, cfg) in configs {
        let imgs = match &cfg {
            None => fp32_imgs.clone(),
            Some(cfg) => {
                let pipeline = fresh_sd();
                apply_ptq(&pipeline.unet, &calib, cfg);
                generate_t2i(&pipeline, &prompts, steps)
            }
        };
        let m_real = evaluate(&real_reference, &imgs, &net);
        let m_fp = evaluate(&fp32_imgs, &imgs, &net);
        eprintln!(
            "[table4] {name:<28} real: {m_real} | fp32-ref: {m_fp}  ({:.0}s)",
            t0.elapsed().as_secs_f32()
        );
        rows.push(vec![
            name.clone(),
            cell(m_real.fid),
            cell(m_real.sfid),
            format!("{:.3}", m_real.precision),
            format!("{:.3}", m_real.recall),
            cell(m_fp.fid),
            cell(m_fp.sfid),
            format!("{:.3}", m_fp.precision),
            format!("{:.3}", m_fp.recall),
        ]);
        vs_real.push((name.clone(), m_real));
        vs_fp32.push((name, m_fp));
    }
    print_table(
        "Table IV: SD-sim Text-to-Image — left: real-scene reference (MS-COCO analogue); right: FP32-generated reference (our methodology)",
        &["Bitwidth (W/A)", "FID", "sFID", "P", "R", "FID*", "sFID*", "P*", "R*"],
        &rows,
    );

    let get = |set: &[(String, QualityMetrics)], tag: &str| {
        set.iter()
            .find(|(name, _)| name.starts_with(tag))
            .map(|(_, m)| *m)
            .expect("row")
    };
    let fp8 = get(&vs_fp32, "FP8/FP8");
    let int8 = get(&vs_fp32, "INT8/INT8");
    let fp4 = get(&vs_fp32, "FP4/FP8 (Ours)");
    let fp4_norl = get(&vs_fp32, "FP4/FP8 no RL");
    let int4 = get(&vs_fp32, "INT4/INT8");
    let mut pass = true;
    pass &= shape("FP8 tracks FP32 more closely than INT8 (FP32-ref FID)", fp8.fid < int8.fid);
    pass &= shape("FP4+RL competitive with INT8 (FP32-ref FID)", fp4.fid < int8.fid * 1.5 + 0.1);
    pass &= shape("FP4+RL beats INT4 (FP32-ref FID)", fp4.fid < int4.fid);
    pass &= shape("FP4 no-RL collapses", fp4_norl.fid > fp4.fid * 3.0);
    // The paper's §VI-E observation: the real-image reference compresses
    // differences that the FP32 reference exposes.
    let spread = |set: &[(String, QualityMetrics)]| {
        let fids: Vec<f32> =
            set.iter().filter(|(n, _)| !n.contains("no RL")).map(|(_, m)| m.fid).collect();
        let max = fids.iter().copied().fold(f32::MIN, f32::max);
        let min = fids.iter().copied().fold(f32::MAX, f32::min);
        (max - min) / (min.abs() + 1e-3)
    };
    pass &= shape(
        "FP32-reference spreads configs more than the real reference",
        spread(&vs_fp32) > spread(&vs_real),
    );
    println!("\nshape checks: {}", if pass { "PASS" } else { "WARN (see above)" });
}

fn shape(what: &str, ok: bool) -> bool {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
    ok
}
