//! Table I — the motivation for rounding learning: FP4-weight / FP8-act
//! quantization by format search alone collapses output quality on both
//! the text-to-image and the unconditional pipeline.
//!
//! Paper reference (Table I): FID 22.71 → 262.8 (Stable Diffusion) and
//! 2.95 → 288.2 (LDM/Bedrooms) when quantizing W to FP4 without RL.

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_data::{CaptionedScenes, Dataset, TinyBedrooms};
use fpdq_metrics::{evaluate, FeatureNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = uncond_samples().min(96);
    let net = FeatureNet::for_size(16);
    let no_rl = PtqConfig::fp(4, 8).without_rounding_learning();
    let t0 = std::time::Instant::now();

    // Column 1: SD-sim (text-to-image), real-scene reference.
    let prompts = eval_prompts(n);
    let (scene_ref, _, _) =
        CaptionedScenes::new().batch_captioned(n, &mut StdRng::seed_from_u64(7));
    let sd = fresh_sd();
    let sd_calib = calibrate_t2i(&sd);
    let sd_fp32 = evaluate(&scene_ref, &generate_t2i(&sd, &prompts, t2i_steps()), &net).fid;
    let sd_q = {
        let p = fresh_sd();
        apply_ptq(&p.unet, &sd_calib, &no_rl);
        evaluate(&scene_ref, &generate_t2i(&p, &prompts, t2i_steps()), &net).fid
    };
    eprintln!("[table1] sd done ({:.0}s)", t0.elapsed().as_secs_f32());

    // Column 2: LDM-sim (unconditional), real-bedroom reference.
    let bed_ref = TinyBedrooms::new().batch(n, &mut StdRng::seed_from_u64(7));
    let ldm = fresh_ldm();
    let ldm_calib = calibrate_uncond(&ldm.unet, &ldm.schedule, [4, 8, 8]);
    let ldm_fp32 = evaluate(&bed_ref, &generate_uncond(&ldm, n, uncond_steps()), &net).fid;
    let ldm_q = {
        let p = fresh_ldm();
        apply_ptq(&p.unet, &ldm_calib, &no_rl);
        evaluate(&bed_ref, &generate_uncond(&p, n, uncond_steps()), &net).fid
    };
    eprintln!("[table1] ldm done ({:.0}s)", t0.elapsed().as_secs_f32());

    print_table(
        "Table I: Output quality degradation with FP4-weight/FP8-act quantization, no rounding learning (FID, lower better)",
        &["Bitwidth (W/A)", "SD-sim", "LDM-sim"],
        &[
            vec!["Full Precision".into(), cell(sd_fp32), cell(ldm_fp32)],
            vec!["FP4/FP8 (no RL)".into(), cell(sd_q), cell(ldm_q)],
        ],
    );
    println!(
        "\ndegradation factors: SD-sim {:.1}x, LDM-sim {:.1}x (paper: 11.6x and 97.7x)",
        sd_q / sd_fp32.max(1e-3),
        ldm_q / ldm_fp32.max(1e-3)
    );
    let pass = sd_q > sd_fp32 * 3.0 && ldm_q > ldm_fp32 * 3.0;
    println!("shape checks: {}", if pass { "PASS" } else { "WARN: expected >3x degradation" });
}
