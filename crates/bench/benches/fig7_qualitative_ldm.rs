//! Figure 7 — qualitative LDM (TinyBedrooms) sample grids for
//! full-precision, FP8/FP8, FP4/FP8 and FP4/FP8-without-RL, generated
//! from identical noise (paper §VI-C) and written as PPM contact sheets.
//!
//! Paper reference: (a) FP32 and (b) FP8 indistinguishable, (c) FP4 with
//! RL slightly muted colors but intact composition, (d) FP4 without RL
//! produces noise-like garbage.

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_data::ppm::{image_grid, save_ppm};
use fpdq_tensor::Tensor;

fn main() {
    let n = 8;
    let steps = uncond_steps();
    let dir = artifact_dir();
    let baseline = fresh_ldm();
    let calib = calibrate_uncond(&baseline.unet, &baseline.schedule, [4, 8, 8]);

    let variants: Vec<(&str, Option<PtqConfig>)> = vec![
        ("a_full_precision", None),
        ("b_fp8_fp8", Some(PtqConfig::fp(8, 8))),
        ("c_fp4_fp8", Some(PtqConfig::fp(4, 8))),
        ("d_fp4_fp8_no_rl", Some(PtqConfig::fp(4, 8).without_rounding_learning())),
    ];

    let mut panel_stats = Vec::new();
    for (tag, cfg) in variants {
        let pipeline = fresh_ldm();
        if let Some(cfg) = &cfg {
            apply_ptq(&pipeline.unet, &calib, cfg);
        }
        let imgs = generate_uncond(&pipeline, n, steps);
        let singles: Vec<Tensor> =
            (0..n).map(|i| imgs.narrow(0, i, 1).reshape(&[3, 16, 16])).collect();
        let grid = image_grid(&singles, 4);
        let path = dir.join(format!("fig7_{tag}.ppm"));
        save_ppm(&grid, &path, 8).expect("write ppm");
        println!("fig7: wrote {} (std {:.3})", path.display(), imgs.std());
        panel_stats.push((tag, imgs.std()));
    }
    // The no-RL panel is visibly degenerate; its pixel statistics drift
    // far from the full-precision panel's.
    let fp32_std = panel_stats[0].1;
    let no_rl_std = panel_stats[3].1;
    let pass = (no_rl_std - fp32_std).abs() > 0.05;
    println!(
        "shape checks: {}",
        if pass { "PASS" } else { "WARN (no-RL panel suspiciously close)" }
    );
}
