//! Figure 6 — the rounding-learning regularizer
//! `λ(α) = 1 − (|σ(α) − 0.5|·2)^β` that pushes each soft rounding
//! decision to the {0, 1} boundary, shown at the paper's β = 20 and at
//! the annealed β values the optimiser actually sweeps through.

use fpdq_core::rounding::regularizer;
use fpdq_core::RoundingConfig;

fn main() {
    println!("\n=== Figure 6: rounding-learning regularizer 1 - (|sigma-0.5|*2)^beta ===");
    println!("{:>8} {:>10} {:>10} {:>10}", "sigma", "beta=20", "beta=8", "beta=2");
    let mut prev20 = f32::NEG_INFINITY;
    let mut rising = true;
    for i in 0..=20 {
        let sigma = i as f32 / 20.0;
        let r20 = regularizer(sigma, 20.0);
        let r8 = regularizer(sigma, 8.0);
        let r2 = regularizer(sigma, 2.0);
        println!("{sigma:>8.2} {r20:>10.4} {r8:>10.4} {r2:>10.4}");
        if sigma <= 0.5 {
            rising &= r20 >= prev20 - 1e-6;
            prev20 = r20;
        }
    }
    // Annealing trajectory actually used in learning.
    let cfg = RoundingConfig::default();
    let betas: Vec<String> = [0usize, 50, 100, 150, 200, 249]
        .iter()
        .map(|&it| format!("it {it}: beta {:.1}", cfg.beta_at(it)))
        .collect();
    println!("\nannealing schedule over {} iterations: {}", cfg.iters, betas.join(", "));

    let pass = rising
        && regularizer(0.0, 20.0).abs() < 1e-6
        && regularizer(1.0, 20.0).abs() < 1e-6
        && (regularizer(0.5, 20.0) - 1.0).abs() < 1e-6;
    println!("shape checks: {}", if pass { "PASS" } else { "WARN" });
}
