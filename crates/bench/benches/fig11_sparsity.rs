//! Figure 11 — percentage of zero weights in SD-sim and LDM-sim before
//! and after quantization, plus the sparsity-increase factors.
//!
//! Paper reference: FP8 increases weight sparsity 31.6× (SD) / 20.1×
//! (LDM); FP4 617× / 428.5× — an order of magnitude or more, enabling the
//! sparse-kernel optimisations in `fpdq-kernels`.

use fpdq_bench::*;
use fpdq_core::sparsity::weight_sparsity;
use fpdq_core::PtqConfig;
use fpdq_nn::UNet;

fn measure(
    model: &str,
    make: &dyn Fn() -> (UNet, fpdq_core::CalibrationSet),
) -> Vec<(String, f32)> {
    let mut out = Vec::new();
    for (name, cfg) in [
        ("FP32".to_string(), None),
        ("FP8 weights".to_string(), Some(PtqConfig::fp(8, 8))),
        ("FP4 weights".to_string(), Some(PtqConfig::fp(4, 8))),
    ] {
        let (unet, calib) = make();
        if let Some(cfg) = &cfg {
            // Weight sparsity only needs the weight pass.
            let mut cfg = cfg.clone();
            cfg.quantize_acts = false;
            apply_ptq(&unet, &calib, &cfg);
        }
        let s = weight_sparsity(&unet).overall();
        eprintln!("[fig11] {model} {name}: sparsity {s:.6}");
        out.push((name, s));
    }
    out
}

fn main() {
    let sd = measure("SD-sim", &|| {
        let p = fresh_sd();
        let calib = calibrate_t2i(&p);
        (p.unet, calib)
    });
    let ldm = measure("LDM-sim", &|| {
        let p = fresh_ldm();
        let calib = calibrate_uncond(&p.unet, &p.schedule, [4, 8, 8]);
        (p.unet, calib)
    });

    println!("\n=== Figure 11: percentage of zero weights ===");
    println!("{:<16}{:>12}{:>12}", "Config", "SD-sim", "LDM-sim");
    for i in 0..sd.len() {
        println!("{:<16}{:>11.4}%{:>11.4}%", sd[i].0, 100.0 * sd[i].1, 100.0 * ldm[i].1);
    }
    // Increase factors vs the FP32 baseline (floored to one weight).
    let factor = |set: &[(String, f32)], i: usize| set[i].1 / set[0].1.max(1e-6);
    println!("\nsparsity increase vs FP32 (paper: SD 31.6x/617x, LDM 20.1x/428.5x):");
    println!("  SD-sim : FP8 {:.1}x, FP4 {:.1}x", factor(&sd, 1), factor(&sd, 2));
    println!("  LDM-sim: FP8 {:.1}x, FP4 {:.1}x", factor(&ldm, 1), factor(&ldm, 2));

    let pass = sd[1].1 > sd[0].1
        && sd[2].1 > 8.0 * sd[1].1.max(1e-6) / 8.0
        && sd[2].1 > sd[1].1 * 3.0
        && ldm[2].1 > ldm[1].1 * 3.0;
    println!(
        "shape checks: {}",
        if pass { "PASS (FP4 sparsity >> FP8 sparsity >> FP32)" } else { "WARN" }
    );
}
