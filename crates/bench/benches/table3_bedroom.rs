//! Table III — LDM on (Tiny)Bedrooms: the five main configurations plus
//! the FP4/FP8-without-rounding-learning ablation row.
//!
//! Paper reference (Table III): FP8/FP8 matches (even slightly beats)
//! FP32; INT8 drifts; FP4/FP8 *without* RL fails badly (FID 288) while
//! FP4/FP8 *with* RL lands near FP32 and beats INT4/INT8.

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_data::{Dataset, TinyBedrooms};
use fpdq_metrics::{evaluate, FeatureNet, QualityMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = uncond_samples();
    let steps = uncond_steps();
    let net = FeatureNet::for_size(16);
    let reference = TinyBedrooms::new().batch(n, &mut StdRng::seed_from_u64(7));

    let t0 = std::time::Instant::now();
    let baseline = fresh_ldm();
    let calib = calibrate_uncond(&baseline.unet, &baseline.schedule, [4, 8, 8]);

    let mut configs = main_table_configs();
    configs.insert(
        4,
        ("FP4/FP8 no RL (Ours)".into(), Some(PtqConfig::fp(4, 8).without_rounding_learning())),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<(String, QualityMetrics)> = Vec::new();
    for (name, cfg) in configs {
        let pipeline = fresh_ldm();
        if let Some(cfg) = &cfg {
            apply_ptq(&pipeline.unet, &calib, cfg);
        }
        let imgs = generate_uncond(&pipeline, n, steps);
        let m = evaluate(&reference, &imgs, &net);
        eprintln!("[table3] {name:<28} {m}  ({:.0}s)", t0.elapsed().as_secs_f32());
        rows.push(vec![
            name.clone(),
            cell(m.fid),
            cell(m.sfid),
            format!("{:.4}", m.precision),
            format!("{:.4}", m.recall),
        ]);
        results.push((name, m));
    }
    print_table(
        "Table III: LDM (TinyBedrooms) Quantitative Evaluation",
        &["Bitwidth (W/A)", "FID", "sFID", "Prec", "Recall"],
        &rows,
    );

    let get = |tag: &str| {
        results
            .iter()
            .find(|(name, _)| name.starts_with(tag))
            .map(|(_, m)| *m)
            .expect("row present")
    };
    let fp32 = get("Full Precision");
    let fp8 = get("FP8/FP8");
    let fp4_norl = get("FP4/FP8 no RL");
    let fp4 = get("FP4/FP8 (Ours)");
    let int4 = get("INT4/INT8");
    let mut pass = true;
    pass &= shape("FP8/FP8 holds FP32 quality", (fp8.fid - fp32.fid).abs() < fp32.fid * 0.5 + 0.2);
    pass &= shape(
        "FP4 without RL fails badly (the Table I/III collapse)",
        fp4_norl.fid > fp4.fid * 3.0 && fp4_norl.sfid > fp4.sfid * 2.0,
    );
    pass &= shape("rounding learning rescues FP4", fp4.fid < fp4_norl.fid * 0.5);
    pass &= shape("FP4/FP8 (ours) beats INT4/INT8", fp4.fid < int4.fid);
    println!("\nshape checks: {}", if pass { "PASS" } else { "WARN (see above)" });
}

fn shape(what: &str, ok: bool) -> bool {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
    ok
}
