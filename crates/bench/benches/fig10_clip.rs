//! Figure 10 — CLIP-style prompt/image agreement across quantization
//! configurations on SD-sim.
//!
//! Paper reference: all configs land near the full-precision score, but
//! the FP-quantized models consistently score at or above the
//! integer-quantized ones (FP4/FP8 even edges out full precision).

use fpdq_bench::*;
use fpdq_metrics::SimClip;

fn main() {
    let n = t2i_samples();
    let steps = t2i_steps();
    let prompts = eval_prompts(n);
    let clip = SimClip::new();

    let fp32 = fresh_sd();
    let calib = calibrate_t2i(&fp32);
    let t0 = std::time::Instant::now();

    let mut scores: Vec<(String, f32)> = Vec::new();
    for (name, cfg) in main_table_configs() {
        let pipeline = fresh_sd();
        if let Some(cfg) = &cfg {
            apply_ptq(&pipeline.unet, &calib, cfg);
        }
        let imgs = generate_t2i(&pipeline, &prompts, steps);
        let s = clip.score_batch(&imgs, &prompts);
        eprintln!("[fig10] {name:<28} clip {s:.4}  ({:.0}s)", t0.elapsed().as_secs_f32());
        scores.push((name, s));
    }

    let fp32_score = scores[0].1;
    println!("\n=== Figure 10: CLIP-style score by configuration (higher = better; dotted line = FP32) ===");
    for (name, s) in &scores {
        let bar = "#".repeat((s * 60.0) as usize);
        println!("{name:<30} {s:.4}  {bar}");
    }
    println!("{:<30} {fp32_score:.4}  (reference line)", "FP32 reference");

    let get = |tag: &str| scores.iter().find(|(n, _)| n.contains(tag)).unwrap().1;
    let mut pass = true;
    pass &= shape(
        "all configs near full precision (within 20%)",
        scores.iter().all(|(_, s)| *s > fp32_score * 0.8),
    );
    pass &= shape("FP8 >= INT8", get("FP8/FP8") >= get("INT8/INT8") - 0.01);
    pass &= shape("FP4 >= INT4", get("FP4/FP8") >= get("INT4/INT8") - 0.01);
    println!("\nshape checks: {}", if pass { "PASS" } else { "WARN (see above)" });
}

fn shape(what: &str, ok: bool) -> bool {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
    ok
}
