//! Table V — SDXL-sim (≈3× larger U-Net) evaluation with the paper's
//! FP32-generated reference methodology.
//!
//! Paper reference (Table V): on the larger model the FP8/FP8 advantage
//! over INT8/INT8 *widens* dramatically (FID 39.5 vs 94.2; better on all
//! four metrics).

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_metrics::{evaluate, FeatureNet, QualityMetrics};

fn main() {
    let n = t2i_samples();
    let steps = t2i_steps();
    let net = FeatureNet::for_size(16);
    let prompts = eval_prompts(n);

    let t0 = std::time::Instant::now();
    let fp32 = fresh_sdxl();
    eprintln!(
        "[table5] sdxl unet params: {} (sd-sim: {})",
        fp32.unet.param_count(),
        fresh_sd().unet.param_count()
    );
    let calib = calibrate_t2i(&fp32);
    let fp32_imgs = generate_t2i(&fp32, &prompts, steps);

    let configs: Vec<(String, Option<PtqConfig>)> = vec![
        ("Full Precision".into(), None),
        ("INT8/INT8".into(), Some(PtqConfig::int(8, 8))),
        ("FP8/FP8 (Ours)".into(), Some(PtqConfig::fp(8, 8))),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<(String, QualityMetrics)> = Vec::new();
    for (name, cfg) in configs {
        let imgs = match &cfg {
            None => fp32_imgs.clone(),
            Some(cfg) => {
                let pipeline = fresh_sdxl();
                apply_ptq(&pipeline.unet, &calib, cfg);
                generate_t2i(&pipeline, &prompts, steps)
            }
        };
        let m = evaluate(&fp32_imgs, &imgs, &net);
        eprintln!("[table5] {name:<20} {m}  ({:.0}s)", t0.elapsed().as_secs_f32());
        rows.push(vec![
            name.clone(),
            cell(m.fid),
            cell(m.sfid),
            format!("{:.4}", m.precision),
            format!("{:.4}", m.recall),
        ]);
        results.push((name, m));
    }
    print_table(
        "Table V: SDXL-sim Quantitative Evaluation (FP32-generated reference)",
        &["Bitwidth (W/A)", "FID", "sFID", "Prec", "Recall"],
        &rows,
    );

    let fp8 = results.iter().find(|(n, _)| n.contains("FP8")).unwrap().1;
    let int8 = results.iter().find(|(n, _)| n.contains("INT8")).unwrap().1;
    let mut pass = true;
    pass &= shape("FP8/FP8 beats INT8/INT8 on FID", fp8.fid < int8.fid);
    pass &= shape("FP8/FP8 beats INT8/INT8 on precision", fp8.precision >= int8.precision);
    println!("\nshape checks: {}", if pass { "PASS" } else { "WARN (see above)" });
}

fn shape(what: &str, ok: bool) -> bool {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
    ok
}
