//! Table II — DDIM on (Tiny)CIFAR: quantitative evaluation of the five
//! weight/activation configurations with FID / sFID / Precision / Recall.
//!
//! Paper reference (Table II): INT8/INT8 and FP8/FP8 both hold
//! full-precision quality; 4-bit weights degrade mildly; FP4/FP8 clearly
//! beats INT4/INT8 on sFID.

use fpdq_bench::*;
use fpdq_data::{Dataset, TinyCifar};
use fpdq_metrics::{evaluate, FeatureNet, QualityMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = uncond_samples();
    let steps = uncond_steps();
    let net = FeatureNet::for_size(8);
    // Reference images, as in Q-Diffusion's protocol: the training
    // distribution itself.
    let reference = TinyCifar::new().batch(n, &mut StdRng::seed_from_u64(7));

    let t0 = std::time::Instant::now();
    let baseline = fresh_ddim();
    let calib = calibrate_uncond(&baseline.unet, &baseline.schedule, [3, 8, 8]);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<(String, QualityMetrics)> = Vec::new();
    for (name, cfg) in main_table_configs() {
        let pipeline = fresh_ddim();
        if let Some(cfg) = &cfg {
            apply_ptq(&pipeline.unet, &calib, cfg);
        }
        let imgs = generate_ddim(&pipeline, n, steps);
        let m = evaluate(&reference, &imgs, &net);
        eprintln!("[table2] {name:<28} {m}  ({:.0}s)", t0.elapsed().as_secs_f32());
        rows.push(vec![
            name.clone(),
            cell(m.fid),
            cell(m.sfid),
            format!("{:.4}", m.precision),
            format!("{:.4}", m.recall),
        ]);
        results.push((name, m));
    }
    print_table(
        "Table II: (Tiny)CIFAR Quantitative Evaluation — DDIM",
        &["Bitwidth (W/A)", "FID", "sFID", "Prec", "Recall"],
        &rows,
    );

    // Shape checks against the paper's qualitative findings.
    let get = |tag: &str| {
        results
            .iter()
            .find(|(name, _)| name.contains(tag))
            .map(|(_, m)| *m)
            .expect("row present")
    };
    let fp32 = get("Full Precision");
    let fp8 = get("FP8/FP8");
    let int8 = get("INT8/INT8");
    let fp4 = get("FP4/FP8");
    let int4 = get("INT4/INT8");
    let mut pass = true;
    pass &= shape(
        "8-bit holds FP32 quality (both schemes)",
        fp8.fid < fp32.fid * 2.0 + 0.5 && int8.fid < fp32.fid * 2.0 + 0.5,
    );
    pass &= shape("4-bit degrades vs 8-bit", fp4.fid + int4.fid >= fp8.fid + int8.fid - 0.05);
    pass &= shape("FP4/FP8 beats INT4/INT8 on sFID", fp4.sfid <= int4.sfid + 0.2);
    println!("\nshape checks: {}", if pass { "PASS" } else { "WARN (see above)" });
}

fn shape(what: &str, ok: bool) -> bool {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
    ok
}
