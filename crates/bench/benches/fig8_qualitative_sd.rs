//! Figure 8 — qualitative SD-sim text-to-image comparison: for each of a
//! few fixed prompts, one row per configuration (real scene, FP32,
//! FP8/FP8, INT8/INT8, FP4/FP8, INT4/INT8), identical noise per prompt.
//!
//! Paper reference: integer-quantized models lose objects and details
//! (blurry faces, vanished furniture); FP-quantized models track the
//! full-precision images closely.

use fpdq_bench::*;
use fpdq_core::PtqConfig;
use fpdq_data::ppm::{image_grid, save_ppm};
use fpdq_data::SceneSpec;
use fpdq_metrics::SimClip;
use fpdq_tensor::Tensor;

fn main() {
    let steps = t2i_steps();
    let dir = artifact_dir();
    let prompts: Vec<String> = vec![
        "a red ball in a dark room".into(),
        "a blue box in a bright room".into(),
        "a green ring in a dark room".into(),
    ];
    // "Ground truth" renders of the prompts (the MS-COCO column).
    let truth: Vec<Tensor> = prompts
        .iter()
        .map(|p| {
            let (c, o, pl) = SimClip::parse_caption(p).expect("grammar prompt");
            SceneSpec { color: c, object: o, place: pl, x: 0.5, y: 0.5, size: 0.3 }.render(16)
        })
        .collect();

    let fp32 = fresh_sd();
    let calib = calibrate_t2i(&fp32);
    let configs: Vec<(&str, Option<PtqConfig>)> = vec![
        ("full-precision", None),
        ("fp8_fp8", Some(PtqConfig::fp(8, 8))),
        ("int8_int8", Some(PtqConfig::int(8, 8))),
        ("fp4_fp8", Some(PtqConfig::fp(4, 8))),
        ("int4_int8", Some(int_w4a8())),
    ];

    // Rows: prompts. Columns: truth + configs.
    let mut columns: Vec<Vec<Tensor>> = vec![truth];
    let clip = SimClip::new();
    for (tag, cfg) in &configs {
        let pipeline = fresh_sd();
        if let Some(cfg) = cfg {
            apply_ptq(&pipeline.unet, &calib, cfg);
        }
        let imgs = generate_t2i(&pipeline, &prompts, steps);
        let score = clip.score_batch(&imgs, &prompts);
        println!("fig8: {tag:<16} clip-sim {score:.3}");
        columns
            .push((0..prompts.len()).map(|i| imgs.narrow(0, i, 1).reshape(&[3, 16, 16])).collect());
    }
    // Write one grid per prompt row: [truth, fp32, fp8, int8, fp4, int4].
    for (row, prompt) in prompts.iter().enumerate() {
        let cells: Vec<Tensor> = columns.iter().map(|col| col[row].clone()).collect();
        let grid = image_grid(&cells, cells.len());
        let file = dir.join(format!("fig8_prompt{row}.ppm"));
        save_ppm(&grid, &file, 8).expect("write ppm");
        println!("fig8: wrote {} ({prompt}; cols: truth/fp32/fp8/int8/fp4/int4)", file.display());
    }
    println!("shape checks: PASS (visual artifact; see fig10 for quantitative CLIP comparison)");
}
