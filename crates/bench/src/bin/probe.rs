//! Quick end-to-end validation of the headline experiment on the LDM
//! pipeline (small sample count).

use fpdq_bench::*;
use fpdq_data::{Dataset, TinyBedrooms};
use fpdq_metrics::{evaluate, FeatureNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 64;
    let steps = 25;
    let net = FeatureNet::for_size(16);
    let ds = TinyBedrooms::new();
    let reference = ds.batch(n, &mut StdRng::seed_from_u64(7));

    let t0 = std::time::Instant::now();
    let fp32 = fresh_ldm();
    let calib = calibrate_uncond(&fp32.unet, &fp32.schedule, [4, 8, 8]);
    eprintln!(
        "[probe] calib ready at {:.1}s ({} init, {} rl)",
        t0.elapsed().as_secs_f32(),
        calib.init.len(),
        calib.rl.len()
    );

    let fp32_imgs = generate_uncond(&fp32, n, steps);
    let m = evaluate(&reference, &fp32_imgs, &net);
    eprintln!("[probe] FP32      {m}   ({:.1}s)", t0.elapsed().as_secs_f32());

    for (name, cfg) in [
        ("FP8/FP8", fpdq_core::PtqConfig::fp(8, 8)),
        ("INT8/INT8", fpdq_core::PtqConfig::int(8, 8)),
        ("INT4/INT8", int_w4a8()),
        ("FP4/FP8 noRL", fpdq_core::PtqConfig::fp(4, 8).without_rounding_learning()),
        ("FP4/FP8 +RL", fpdq_core::PtqConfig::fp(4, 8)),
    ] {
        let p = fresh_ldm();
        let report = apply_ptq(&p.unet, &calib, &cfg);
        let imgs = generate_uncond(&p, n, steps);
        let m = evaluate(&reference, &imgs, &net);
        let mfp = evaluate(&fp32_imgs, &imgs, &net);
        eprintln!(
            "[probe] {name:<13} {m}  | vsFP32: FID {:.3}  sparsity {:.4}  ({:.1}s)",
            mfp.fid,
            report.sparsity_after(),
            t0.elapsed().as_secs_f32()
        );
    }
}
