//! # fpdq-bench
//!
//! Shared harness utilities for the per-table / per-figure experiment
//! benches (see `benches/`). Each bench target regenerates one table or
//! figure of the paper; this library holds the common machinery:
//! pipeline loading, calibration, quantization-config construction,
//! sample generation with paired seeds (paper §VI-C), and table printing.
//!
//! Runtime knobs (environment):
//!
//! * `FPDQ_SAMPLES` — samples per configuration (default 128
//!   unconditional / 96 text-to-image);
//! * `FPDQ_STEPS` — DDIM steps (default 25 unconditional / 20
//!   text-to-image);
//! * `FPDQ_FAST=1` — use the fast-trained zoo models (CI smoke runs).

use fpdq_core::{
    quantize_unet, record_trajectories, CalibrationSet, PtqConfig, QuantReport, RoundingConfig,
};
use fpdq_diffusion::{DdimSim, LdmSim, SdSim, Zoo};
use fpdq_nn::UNet;
use fpdq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The master experiment seed (fixed across configurations so every
/// quantization variant denoises the *same* noise inputs, §VI-C).
pub const EVAL_SEED: u64 = 0xD1FF;

/// Calibration seed (distinct from evaluation).
pub const CALIB_SEED: u64 = 0xCA11B;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Samples per configuration for unconditional tables.
pub fn uncond_samples() -> usize {
    env_usize("FPDQ_SAMPLES", 128)
}

/// Samples per configuration for text-to-image tables.
pub fn t2i_samples() -> usize {
    env_usize("FPDQ_SAMPLES", 96)
}

/// DDIM steps for unconditional generation.
pub fn uncond_steps() -> usize {
    env_usize("FPDQ_STEPS", 25)
}

/// DDIM steps for text-to-image generation.
pub fn t2i_steps() -> usize {
    env_usize("FPDQ_STEPS", 20)
}

/// Opens the default zoo (trains on first use).
pub fn zoo() -> Zoo {
    Zoo::open_default()
}

/// The five weight/activation configurations of the paper's main tables,
/// in presentation order.
pub fn main_table_configs() -> Vec<(String, Option<PtqConfig>)> {
    vec![
        ("Full Precision (FP32/FP32)".into(), None),
        ("INT8/INT8".into(), Some(PtqConfig::int(8, 8))),
        ("FP8/FP8 (Ours)".into(), Some(PtqConfig::fp(8, 8))),
        ("INT4/INT8".into(), Some(int_w4a8())),
        ("FP4/FP8 (Ours)".into(), Some(PtqConfig::fp(4, 8))),
    ]
}

/// INT4 weights / INT8 activations (the paper's Q-Diffusion-style W4A8
/// baseline).
pub fn int_w4a8() -> PtqConfig {
    let mut cfg = PtqConfig::int(4, 8);
    cfg.act_bits = 8;
    cfg
}

/// Rounding-learning budget used by the experiment harnesses
/// (`FPDQ_RL_ITERS` overrides, for time-constrained runs).
pub fn bench_rounding() -> RoundingConfig {
    let iters = env_usize("FPDQ_RL_ITERS", 120);
    RoundingConfig { iters, batch: 8, ..RoundingConfig::default() }
}

/// Builds a calibration set for an unconditional pipeline (paper: 128
/// init samples uniform over timesteps; we scale to the substrate).
pub fn calibrate_uncond(
    unet: &UNet,
    schedule: &fpdq_diffusion::NoiseSchedule,
    dims: [usize; 3],
) -> CalibrationSet {
    let mut rng = StdRng::seed_from_u64(CALIB_SEED);
    record_trajectories(unet, schedule, &dims, &[None], 20, 6, 64, 40, &mut rng)
}

/// Builds a calibration set for a text-to-image pipeline (paper: 16 init
/// samples; calibration includes conditional and null contexts, matching
/// guided sampling).
pub fn calibrate_t2i(sd: &SdSim) -> CalibrationSet {
    let mut rng = StdRng::seed_from_u64(CALIB_SEED);
    let prompts = fpdq_data::CaptionedScenes::all_captions();
    let mut contexts: Vec<Option<Tensor>> = prompts
        .iter()
        .step_by(7)
        .map(|p| Some(sd.encode_prompts(std::slice::from_ref(p))))
        .collect();
    contexts.push(Some(sd.null_context(1)));
    record_trajectories(
        &sd.unet,
        &sd.schedule,
        &[sd.latent_channels, sd.latent_size, sd.latent_size],
        &contexts,
        20,
        8,
        16,
        40,
        &mut rng,
    )
}

/// Applies a PTQ config to a pipeline's U-Net (in place) with the bench
/// rounding budget. Returns the quantization report.
pub fn apply_ptq(unet: &UNet, calib: &CalibrationSet, cfg: &PtqConfig) -> QuantReport {
    let mut cfg = cfg.clone();
    cfg.rounding = bench_rounding();
    let mut rng = StdRng::seed_from_u64(CALIB_SEED + 1);
    quantize_unet(unet, calib, &cfg, &mut rng)
}

/// Loads a fresh (full-precision) LDM pipeline from the zoo.
pub fn fresh_ldm() -> LdmSim {
    zoo().ldm_sim()
}

/// Loads a fresh DDIM pipeline from the zoo.
pub fn fresh_ddim() -> DdimSim {
    zoo().ddim_sim()
}

/// Loads a fresh SD pipeline from the zoo.
pub fn fresh_sd() -> SdSim {
    zoo().sd_sim()
}

/// Loads a fresh SDXL pipeline from the zoo.
pub fn fresh_sdxl() -> SdSim {
    zoo().sdxl_sim()
}

/// Generates with the evaluation seed (identical noise across configs).
pub fn generate_uncond(p: &LdmSim, n: usize, steps: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(EVAL_SEED);
    p.generate(n, steps, &mut rng)
}

/// Generates DDIM samples with the evaluation seed.
pub fn generate_ddim(p: &DdimSim, n: usize, steps: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(EVAL_SEED);
    p.generate(n, steps, &mut rng)
}

/// The fixed evaluation prompt set (cycled to `n` prompts).
pub fn eval_prompts(n: usize) -> Vec<String> {
    let all = fpdq_data::CaptionedScenes::all_captions();
    (0..n).map(|i| all[i % all.len()].clone()).collect()
}

/// Generates text-to-image samples with the evaluation seed.
pub fn generate_t2i(p: &SdSim, prompts: &[String], steps: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(EVAL_SEED);
    p.generate(prompts, steps, &mut rng)
}

// ---------------------------------------------------------------------------
// Measured packed engine (fig. 4/5 real-execution sections)
// ---------------------------------------------------------------------------

/// Builds a tiny synthetic U-Net (no zoo training) and quantizes it with
/// `cfg` on synthetic calibration data — the substrate the measured
/// packed-engine sections of figures 4/5 run on, so those benches
/// exercise the real bit-packed kernels instead of only the analytic
/// performance model.
pub fn tiny_quantized_unet(cfg: &PtqConfig) -> (UNet, QuantReport) {
    use fpdq_core::CalibPoint;
    let mut rng = StdRng::seed_from_u64(CALIB_SEED + 2);
    let unet = UNet::new(fpdq_nn::UNetConfig::tiny(2), &mut rng);
    let points: Vec<CalibPoint> = (0..4)
        .map(|i| CalibPoint {
            x: Tensor::randn(&[1, 2, 8, 8], &mut rng),
            t: (i * 7) as f32,
            ctx: None,
        })
        .collect();
    let calib = CalibrationSet { init: points.clone(), rl: points };
    let mut cfg = cfg.clone();
    cfg.bias_candidates = 15;
    cfg.rounding = RoundingConfig { iters: 8, batch: 2, ..RoundingConfig::default() };
    let report = quantize_unet(&unet, &calib, &cfg, &mut rng);
    (unet, report)
}

/// Times one U-Net forward (best of `reps`) on a fixed input.
pub fn time_unet_forward(unet: &UNet, reps: usize) -> f64 {
    let x = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(EVAL_SEED));
    let t = Tensor::from_vec(vec![5.0], &[1]);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        std::hint::black_box(unet.forward(&x, &t, None));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

// ---------------------------------------------------------------------------
// Table formatting
// ---------------------------------------------------------------------------

/// Prints a header + aligned rows: first column 34 wide, rest 10.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut line = format!("{:<34}", header[0]);
    for h in &header[1..] {
        line.push_str(&format!("{h:>10}"));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = format!("{:<34}", row[0]);
        for cell in &row[1..] {
            line.push_str(&format!("{cell:>10}"));
        }
        println!("{line}");
    }
}

/// Formats a float cell.
pub fn cell(v: f32) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Where figure artifacts (PPM grids, CSV series) are written.
pub fn artifact_dir() -> std::path::PathBuf {
    let dir = std::env::var("FPDQ_ARTIFACTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/fpdq-artifacts"));
    std::fs::create_dir_all(&dir).expect("cannot create artifact dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cover_paper_rows() {
        let tags: Vec<String> = main_table_configs()
            .iter()
            .map(|(name, cfg)| cfg.as_ref().map(|c| c.tag()).unwrap_or_else(|| name.clone()))
            .collect();
        assert!(tags.contains(&"INT8/INT8".to_string()));
        assert!(tags.contains(&"FP8/FP8".to_string()));
        assert!(tags.contains(&"INT4/INT8".to_string()));
        assert!(tags.contains(&"FP4/FP8".to_string()));
    }

    #[test]
    fn fp4_config_has_rounding_learning_int_does_not() {
        for (_, cfg) in main_table_configs() {
            if let Some(cfg) = cfg {
                match (cfg.tag().as_str(), cfg.rounding_learning) {
                    ("FP4/FP8", rl) => assert!(rl),
                    ("INT8/INT8" | "INT4/INT8", rl) => assert!(!rl),
                    ("FP8/FP8", rl) => assert!(!rl),
                    (tag, _) => panic!("unexpected tag {tag}"),
                }
            }
        }
    }

    #[test]
    fn eval_prompts_cycle_deterministically() {
        let a = eval_prompts(10);
        let b = eval_prompts(10);
        assert_eq!(a, b);
        assert_eq!(eval_prompts(50).len(), 50);
    }
}
