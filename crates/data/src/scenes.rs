//! `CaptionedScenes`: the text-to-image dataset — an attribute grammar of
//! scenes with deterministic captions, standing in for the captioned
//! LAION-5B / MS-COCO data of the paper's Stable-Diffusion experiments
//! (Tables IV/V, Figures 8-10).
//!
//! The grammar is `"a {color} {object} in a {place} room"`; the image
//! renders exactly those attributes (plus caption-irrelevant jitter in
//! position and size). Because captions map deterministically onto visual
//! attributes, a CLIP-style prompt/image agreement score can be computed
//! exactly (`fpdq-metrics`).

use crate::draw::{shade, Canvas};
use crate::{jitter, Dataset};
use fpdq_tensor::Tensor;
use rand::Rng;

/// Object colors in the caption grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ColorName {
    /// Red.
    Red,
    /// Green.
    Green,
    /// Blue.
    Blue,
    /// Yellow.
    Yellow,
    /// Magenta.
    Magenta,
    /// Cyan.
    Cyan,
}

impl ColorName {
    /// All colors, in grammar order.
    pub const ALL: [ColorName; 6] = [
        ColorName::Red,
        ColorName::Green,
        ColorName::Blue,
        ColorName::Yellow,
        ColorName::Magenta,
        ColorName::Cyan,
    ];

    /// The caption word.
    pub fn word(self) -> &'static str {
        match self {
            ColorName::Red => "red",
            ColorName::Green => "green",
            ColorName::Blue => "blue",
            ColorName::Yellow => "yellow",
            ColorName::Magenta => "magenta",
            ColorName::Cyan => "cyan",
        }
    }

    /// The RGB value (in `[-1, 1]` space).
    pub fn rgb(self) -> [f32; 3] {
        match self {
            ColorName::Red => [0.9, -0.7, -0.7],
            ColorName::Green => [-0.7, 0.9, -0.7],
            ColorName::Blue => [-0.7, -0.7, 0.9],
            ColorName::Yellow => [0.9, 0.9, -0.7],
            ColorName::Magenta => [0.9, -0.7, 0.9],
            ColorName::Cyan => [-0.7, 0.9, 0.9],
        }
    }
}

/// Object shapes in the caption grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ObjectKind {
    /// A filled disc.
    Ball,
    /// A filled square.
    Box,
    /// A plus-shaped cross.
    Cross,
    /// An annulus.
    Ring,
}

impl ObjectKind {
    /// All objects, in grammar order.
    pub const ALL: [ObjectKind; 4] =
        [ObjectKind::Ball, ObjectKind::Box, ObjectKind::Cross, ObjectKind::Ring];

    /// The caption word.
    pub fn word(self) -> &'static str {
        match self {
            ObjectKind::Ball => "ball",
            ObjectKind::Box => "box",
            ObjectKind::Cross => "cross",
            ObjectKind::Ring => "ring",
        }
    }
}

/// Room lighting in the caption grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PlaceKind {
    /// Dark background.
    Dark,
    /// Bright background.
    Bright,
}

impl PlaceKind {
    /// All places, in grammar order.
    pub const ALL: [PlaceKind; 2] = [PlaceKind::Dark, PlaceKind::Bright];

    /// The caption word.
    pub fn word(self) -> &'static str {
        match self {
            PlaceKind::Dark => "dark",
            PlaceKind::Bright => "bright",
        }
    }

    /// The background grey level.
    pub fn background(self) -> [f32; 3] {
        match self {
            PlaceKind::Dark => [-0.75, -0.75, -0.75],
            PlaceKind::Bright => [0.55, 0.55, 0.55],
        }
    }
}

/// A fully specified scene: the caption-relevant attributes plus
/// caption-irrelevant nuisance parameters.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SceneSpec {
    /// Object color (captioned).
    pub color: ColorName,
    /// Object shape (captioned).
    pub object: ObjectKind,
    /// Room lighting (captioned).
    pub place: PlaceKind,
    /// Object centre x (not captioned).
    pub x: f32,
    /// Object centre y (not captioned).
    pub y: f32,
    /// Object scale (not captioned).
    pub size: f32,
}

impl SceneSpec {
    /// Draws a random scene specification.
    pub fn random(rng: &mut dyn rand::RngCore) -> Self {
        SceneSpec {
            color: ColorName::ALL[rng.gen_range(0..ColorName::ALL.len())],
            object: ObjectKind::ALL[rng.gen_range(0..ObjectKind::ALL.len())],
            place: PlaceKind::ALL[rng.gen_range(0..PlaceKind::ALL.len())],
            x: 0.5 + jitter(rng, 0.15),
            y: 0.5 + jitter(rng, 0.15),
            size: 0.3 + jitter(rng, 0.06),
        }
    }

    /// The deterministic caption, e.g. `"a red ball in a dark room"`.
    pub fn caption(&self) -> String {
        format!("a {} {} in a {} room", self.color.word(), self.object.word(), self.place.word())
    }

    /// Renders the scene at the given resolution.
    pub fn render(&self, size: usize) -> Tensor {
        let mut c = Canvas::new(size, self.place.background());
        let rgb = self.color.rgb();
        match self.object {
            ObjectKind::Ball => c.disc(self.x, self.y, self.size, rgb),
            ObjectKind::Box => c.rect(
                self.x - self.size,
                self.y - self.size,
                self.x + self.size,
                self.y + self.size,
                rgb,
            ),
            ObjectKind::Cross => c.cross(self.x, self.y, self.size + 0.05, 0.09, rgb),
            ObjectKind::Ring => {
                c.ring(self.x, self.y, self.size + 0.03, (self.size - 0.12).max(0.08), rgb)
            }
        }
        // A soft floor shadow under the object grounds it in the "room".
        let shadow = shade(self.place.background(), 0.6);
        c.rect(self.x - self.size, 0.92, self.x + self.size, 1.0, shadow);
        c.into_tensor()
    }
}

/// The captioned-scene dataset (16×16 images + captions).
#[derive(Clone, Copy, Debug, Default)]
pub struct CaptionedScenes {
    _priv: (),
}

impl CaptionedScenes {
    /// Creates the dataset.
    pub fn new() -> Self {
        CaptionedScenes { _priv: () }
    }

    /// Samples a `(image, caption, spec)` triple.
    pub fn sample_captioned(&self, rng: &mut dyn rand::RngCore) -> (Tensor, String, SceneSpec) {
        let spec = SceneSpec::random(rng);
        (spec.render(self.size()), spec.caption(), spec)
    }

    /// Samples a batch of `(images, captions, specs)`.
    pub fn batch_captioned(
        &self,
        n: usize,
        rng: &mut dyn rand::RngCore,
    ) -> (Tensor, Vec<String>, Vec<SceneSpec>) {
        let mut imgs = Vec::with_capacity(n);
        let mut caps = Vec::with_capacity(n);
        let mut specs = Vec::with_capacity(n);
        for _ in 0..n {
            let (img, cap, spec) = self.sample_captioned(rng);
            imgs.push(img);
            caps.push(cap);
            specs.push(spec);
        }
        let refs: Vec<&Tensor> = imgs.iter().collect();
        (Tensor::stack(&refs), caps, specs)
    }

    /// Every distinct caption in the grammar (6 colors × 4 objects × 2
    /// places = 48 prompts) — the fixed prompt set for evaluation.
    pub fn all_captions() -> Vec<String> {
        let mut out = Vec::new();
        for color in ColorName::ALL {
            for object in ObjectKind::ALL {
                for place in PlaceKind::ALL {
                    out.push(
                        SceneSpec { color, object, place, x: 0.5, y: 0.5, size: 0.3 }.caption(),
                    );
                }
            }
        }
        out
    }
}

impl Dataset for CaptionedScenes {
    fn size(&self) -> usize {
        16
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> Tensor {
        self.sample_captioned(rng).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn caption_matches_attributes() {
        let spec = SceneSpec {
            color: ColorName::Blue,
            object: ObjectKind::Ring,
            place: PlaceKind::Bright,
            x: 0.5,
            y: 0.5,
            size: 0.3,
        };
        assert_eq!(spec.caption(), "a blue ring in a bright room");
    }

    #[test]
    fn render_reflects_place_brightness() {
        let base = SceneSpec {
            color: ColorName::Red,
            object: ObjectKind::Ball,
            place: PlaceKind::Dark,
            x: 0.5,
            y: 0.5,
            size: 0.25,
        };
        let dark = base.render(16);
        let bright = SceneSpec { place: PlaceKind::Bright, ..base }.render(16);
        assert!(bright.mean() > dark.mean() + 0.5);
    }

    #[test]
    fn render_reflects_color() {
        let spec = SceneSpec {
            color: ColorName::Green,
            object: ObjectKind::Box,
            place: PlaceKind::Dark,
            x: 0.5,
            y: 0.5,
            size: 0.3,
        };
        let img = spec.render(16);
        // Centre pixel must be green-dominant.
        let (r, g, b) = (img.at(&[0, 8, 8]), img.at(&[1, 8, 8]), img.at(&[2, 8, 8]));
        assert!(g > r && g > b, "centre not green: {r} {g} {b}");
    }

    #[test]
    fn all_captions_enumerates_grammar() {
        let caps = CaptionedScenes::all_captions();
        assert_eq!(caps.len(), 48);
        let set: std::collections::HashSet<_> = caps.iter().collect();
        assert_eq!(set.len(), 48, "captions must be unique");
        assert!(caps.contains(&"a cyan cross in a dark room".to_string()));
    }

    #[test]
    fn batch_is_consistent() {
        let ds = CaptionedScenes::new();
        let mut rng = StdRng::seed_from_u64(3);
        let (imgs, caps, specs) = ds.batch_captioned(4, &mut rng);
        assert_eq!(imgs.dims(), &[4, 3, 16, 16]);
        assert_eq!(caps.len(), 4);
        for (cap, spec) in caps.iter().zip(&specs) {
            assert_eq!(cap, &spec.caption());
        }
    }

    #[test]
    fn ring_has_hole_ball_does_not() {
        let ball = SceneSpec {
            color: ColorName::Red,
            object: ObjectKind::Ball,
            place: PlaceKind::Dark,
            x: 0.5,
            y: 0.5,
            size: 0.3,
        };
        let ring = SceneSpec { object: ObjectKind::Ring, ..ball };
        let bi = ball.render(16);
        let ri = ring.render(16);
        // Ball centre is red; ring centre is background.
        assert!(bi.at(&[0, 8, 8]) > 0.5);
        assert!(ri.at(&[0, 8, 8]) < -0.5);
    }
}
