//! A tiny float RGB canvas with the drawing primitives the procedural
//! datasets are built from.

use fpdq_tensor::Tensor;

/// An RGB drawing surface with values in `[-1, 1]`.
///
/// Coordinates are fractional: `(0.0, 0.0)` is the top-left corner and
/// `(1.0, 1.0)` the bottom-right, so scenes are resolution-independent.
#[derive(Clone, Debug)]
pub struct Canvas {
    size: usize,
    data: Vec<f32>, // [3, size, size]
}

impl Canvas {
    /// Creates a canvas filled with a background color.
    pub fn new(size: usize, background: [f32; 3]) -> Self {
        let mut data = vec![0.0f32; 3 * size * size];
        for c in 0..3 {
            data[c * size * size..(c + 1) * size * size].fill(background[c]);
        }
        Canvas { size, data }
    }

    /// Canvas spatial extent.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Converts into a `[3, size, size]` tensor clamped to `[-1, 1]`.
    pub fn into_tensor(self) -> Tensor {
        let size = self.size;
        Tensor::from_vec(self.data, &[3, size, size]).clamp(-1.0, 1.0)
    }

    fn put(&mut self, x: usize, y: usize, color: [f32; 3]) {
        if x < self.size && y < self.size {
            let hw = self.size * self.size;
            #[allow(clippy::needless_range_loop)] // c indexes color and the plane offset
            for c in 0..3 {
                self.data[c * hw + y * self.size + x] = color[c];
            }
        }
    }

    fn to_px(&self, v: f32) -> isize {
        (v * self.size as f32).round() as isize
    }

    /// Fills the axis-aligned rectangle `[x0, x1) × [y0, y1)` (fractions).
    pub fn rect(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, color: [f32; 3]) {
        let (px0, py0) = (self.to_px(x0).max(0), self.to_px(y0).max(0));
        let (px1, py1) = (self.to_px(x1), self.to_px(y1));
        for y in py0..py1.min(self.size as isize) {
            for x in px0..px1.min(self.size as isize) {
                self.put(x as usize, y as usize, color);
            }
        }
    }

    /// Fills a disc centred at `(cx, cy)` with radius `r` (fractions).
    pub fn disc(&mut self, cx: f32, cy: f32, r: f32, color: [f32; 3]) {
        let s = self.size as f32;
        let (pcx, pcy, pr) = (cx * s, cy * s, r * s);
        for y in 0..self.size {
            for x in 0..self.size {
                let dx = x as f32 + 0.5 - pcx;
                let dy = y as f32 + 0.5 - pcy;
                if dx * dx + dy * dy <= pr * pr {
                    self.put(x, y, color);
                }
            }
        }
    }

    /// Draws an annulus (ring) centred at `(cx, cy)`.
    pub fn ring(&mut self, cx: f32, cy: f32, r_outer: f32, r_inner: f32, color: [f32; 3]) {
        let s = self.size as f32;
        let (pcx, pcy) = (cx * s, cy * s);
        let (ro, ri) = (r_outer * s, r_inner * s);
        for y in 0..self.size {
            for x in 0..self.size {
                let dx = x as f32 + 0.5 - pcx;
                let dy = y as f32 + 0.5 - pcy;
                let d2 = dx * dx + dy * dy;
                if d2 <= ro * ro && d2 >= ri * ri {
                    self.put(x, y, color);
                }
            }
        }
    }

    /// Alternating stripes of `period` pixels; vertical when `vertical`.
    pub fn stripes(&mut self, period: usize, vertical: bool, a: [f32; 3], b: [f32; 3]) {
        let period = period.max(1);
        for y in 0..self.size {
            for x in 0..self.size {
                let k = if vertical { x } else { y };
                self.put(x, y, if (k / period).is_multiple_of(2) { a } else { b });
            }
        }
    }

    /// Checkerboard with `cell`-pixel cells.
    pub fn checker(&mut self, cell: usize, a: [f32; 3], b: [f32; 3]) {
        let cell = cell.max(1);
        for y in 0..self.size {
            for x in 0..self.size {
                self.put(x, y, if ((x / cell) + (y / cell)).is_multiple_of(2) { a } else { b });
            }
        }
    }

    /// A `+`-shaped cross centred at `(cx, cy)` with arm half-length `r`
    /// and thickness `t` (fractions).
    pub fn cross(&mut self, cx: f32, cy: f32, r: f32, t: f32, color: [f32; 3]) {
        self.rect(cx - r, cy - t, cx + r, cy + t, color);
        self.rect(cx - t, cy - r, cx + t, cy + r, color);
    }

    /// Vertical linear gradient between two colors.
    pub fn vgradient(&mut self, top: [f32; 3], bottom: [f32; 3]) {
        for y in 0..self.size {
            let t = y as f32 / (self.size - 1).max(1) as f32;
            let color = [
                top[0] + (bottom[0] - top[0]) * t,
                top[1] + (bottom[1] - top[1]) * t,
                top[2] + (bottom[2] - top[2]) * t,
            ];
            for x in 0..self.size {
                self.put(x, y, color);
            }
        }
    }
}

/// Scales an RGB color by a brightness factor (stays in `[-1, 1]` after
/// canvas clamping).
pub fn shade(color: [f32; 3], brightness: f32) -> [f32; 3] {
    [color[0] * brightness, color[1] * brightness, color[2] * brightness]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_fill() {
        let c = Canvas::new(4, [0.5, -0.5, 1.0]);
        let t = c.into_tensor();
        assert_eq!(t.dims(), &[3, 4, 4]);
        assert_eq!(t.at(&[0, 2, 2]), 0.5);
        assert_eq!(t.at(&[1, 0, 0]), -0.5);
        assert_eq!(t.at(&[2, 3, 3]), 1.0);
    }

    #[test]
    fn rect_covers_expected_pixels() {
        let mut c = Canvas::new(8, [0.0; 3]);
        c.rect(0.25, 0.25, 0.75, 0.5, [1.0, 1.0, 1.0]);
        let t = c.into_tensor();
        assert_eq!(t.at(&[0, 2, 2]), 1.0); // inside
        assert_eq!(t.at(&[0, 2, 1]), 0.0); // left of rect
        assert_eq!(t.at(&[0, 4, 4]), 0.0); // below rect
    }

    #[test]
    fn disc_is_roughly_circular() {
        let mut c = Canvas::new(16, [-1.0; 3]);
        c.disc(0.5, 0.5, 0.25, [1.0; 3]);
        let t = c.into_tensor();
        assert_eq!(t.at(&[0, 8, 8]), 1.0); // centre
        assert_eq!(t.at(&[0, 0, 0]), -1.0); // corner
                                            // Area of a r=4px disc ≈ 50 px.
        let lit = t.data()[..256].iter().filter(|&&v| v > 0.0).count();
        assert!((30..80).contains(&lit), "{lit} pixels lit");
    }

    #[test]
    fn ring_has_hole() {
        let mut c = Canvas::new(16, [-1.0; 3]);
        c.ring(0.5, 0.5, 0.4, 0.25, [1.0; 3]);
        let t = c.into_tensor();
        assert_eq!(t.at(&[0, 8, 8]), -1.0); // hole
        assert_eq!(t.at(&[0, 8, 13]), 1.0); // ring body
    }

    #[test]
    fn stripes_alternate() {
        let mut c = Canvas::new(8, [0.0; 3]);
        c.stripes(2, true, [1.0; 3], [-1.0; 3]);
        let t = c.into_tensor();
        assert_eq!(t.at(&[0, 0, 0]), 1.0);
        assert_eq!(t.at(&[0, 0, 2]), -1.0);
        assert_eq!(t.at(&[0, 0, 4]), 1.0);
    }

    #[test]
    fn checker_alternates_both_axes() {
        let mut c = Canvas::new(4, [0.0; 3]);
        c.checker(1, [1.0; 3], [-1.0; 3]);
        let t = c.into_tensor();
        assert_eq!(t.at(&[0, 0, 0]), 1.0);
        assert_eq!(t.at(&[0, 0, 1]), -1.0);
        assert_eq!(t.at(&[0, 1, 0]), -1.0);
        assert_eq!(t.at(&[0, 1, 1]), 1.0);
    }

    #[test]
    fn out_of_bounds_drawing_is_clipped() {
        let mut c = Canvas::new(4, [0.0; 3]);
        c.rect(-0.5, -0.5, 2.0, 2.0, [1.0; 3]);
        let t = c.into_tensor();
        assert!(t.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn gradient_monotonic() {
        let mut c = Canvas::new(8, [0.0; 3]);
        c.vgradient([-1.0; 3], [1.0; 3]);
        let t = c.into_tensor();
        for y in 1..8 {
            assert!(t.at(&[0, y, 3]) > t.at(&[0, y - 1, 3]));
        }
    }
}
