//! `TinyCifar`: a 10-class procedural stand-in for CIFAR-10.
//!
//! Each class is a distinct geometric texture family with color, position
//! and scale jitter, giving a multi-modal, class-diverse distribution at
//! 8×8 resolution — the role CIFAR-10 plays for the paper's DDIM
//! experiments (Table II).

use crate::draw::{shade, Canvas};
use crate::{jitter, Dataset};
use fpdq_tensor::Tensor;
use rand::Rng;

/// Number of classes.
pub const NUM_CLASSES: usize = 10;

const PALETTE: [[f32; 3]; 6] = [
    [0.9, -0.6, -0.6], // red
    [-0.6, 0.9, -0.6], // green
    [-0.6, -0.6, 0.9], // blue
    [0.9, 0.9, -0.6],  // yellow
    [0.9, -0.6, 0.9],  // magenta
    [-0.6, 0.9, 0.9],  // cyan
];

/// The 10-class procedural texture dataset.
#[derive(Clone, Copy, Debug, Default)]
pub struct TinyCifar {
    _priv: (),
}

impl TinyCifar {
    /// Creates the dataset (8×8 images).
    pub fn new() -> Self {
        TinyCifar { _priv: () }
    }

    /// Renders one image of the given class (0..10).
    ///
    /// # Panics
    ///
    /// Panics if `class >= 10`.
    pub fn sample_class(&self, class: usize, rng: &mut dyn rand::RngCore) -> Tensor {
        assert!(class < NUM_CLASSES, "class {class} out of range");
        let fg = shade(PALETTE[rng.gen_range(0..PALETTE.len())], rng.gen_range(0.7..1.0));
        let bg = shade(PALETTE[rng.gen_range(0..PALETTE.len())], rng.gen_range(0.2..0.45));
        let mut c = Canvas::new(8, bg);
        let cx = 0.5 + jitter(rng, 0.12);
        let cy = 0.5 + jitter(rng, 0.12);
        match class {
            0 => c.disc(cx, cy, 0.3 + jitter(rng, 0.06), fg),
            1 => {
                // Tall bar (distinct from the disc at 8×8 resolution).
                let r = 0.4 + jitter(rng, 0.04);
                c.rect(cx - 0.15, cy - r, cx + 0.15, cy + r, fg);
            }
            2 => c.ring(cx, cy, 0.38 + jitter(rng, 0.04), 0.2 + jitter(rng, 0.03), fg),
            3 => c.cross(cx, cy, 0.36 + jitter(rng, 0.05), 0.1, fg),
            4 => c.stripes(rng.gen_range(1..3), true, fg, bg),
            5 => c.stripes(rng.gen_range(1..3), false, fg, bg),
            6 => c.checker(rng.gen_range(1..3), fg, bg),
            7 => c.vgradient(fg, bg),
            8 => {
                // Dot grid.
                for gy in 0..3 {
                    for gx in 0..3 {
                        c.disc(0.2 + 0.3 * gx as f32, 0.2 + 0.3 * gy as f32, 0.07, fg);
                    }
                }
            }
            9 => {
                // Frame.
                let r = 0.42 + jitter(rng, 0.04);
                c.rect(cx - r, cy - r, cx + r, cy + r, fg);
                let inner = r - 0.15;
                c.rect(cx - inner, cy - inner, cx + inner, cy + inner, bg);
            }
            _ => unreachable!(),
        }
        c.into_tensor()
    }
}

impl Dataset for TinyCifar {
    fn size(&self) -> usize {
        8
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> Tensor {
        let class = rng.gen_range(0..NUM_CLASSES);
        self.sample_class(class, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_classes_render_in_range() {
        let ds = TinyCifar::new();
        let mut rng = StdRng::seed_from_u64(0);
        for class in 0..NUM_CLASSES {
            let img = ds.sample_class(class, &mut rng);
            assert_eq!(img.dims(), &[3, 8, 8]);
            assert!(img.min() >= -1.0 && img.max() <= 1.0);
        }
    }

    #[test]
    fn classes_are_visually_distinct_on_average() {
        let ds = TinyCifar::new();
        // Per-class mean images over many samples must differ pairwise.
        let mut means = Vec::new();
        for class in 0..NUM_CLASSES {
            let mut rng = StdRng::seed_from_u64(42);
            let mut acc = Tensor::zeros(&[3, 8, 8]);
            for _ in 0..40 {
                acc = acc.add(&ds.sample_class(class, &mut rng));
            }
            means.push(acc.mul_scalar(1.0 / 40.0));
        }
        let mut min_dist = f32::INFINITY;
        for i in 0..NUM_CLASSES {
            for j in i + 1..NUM_CLASSES {
                min_dist = min_dist.min(means[i].mse(&means[j]));
            }
        }
        assert!(min_dist > 1e-3, "two classes look identical: {min_dist}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ds = TinyCifar::new();
        let a = ds.sample(&mut StdRng::seed_from_u64(7));
        let b = ds.sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn batch_stacks_samples() {
        let ds = TinyCifar::new();
        let mut rng = StdRng::seed_from_u64(1);
        let b = ds.batch(5, &mut rng);
        assert_eq!(b.dims(), &[5, 3, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_panics() {
        let ds = TinyCifar::new();
        let mut rng = StdRng::seed_from_u64(1);
        ds.sample_class(10, &mut rng);
    }
}
