//! Word-level tokenizer over the caption grammar's vocabulary.

use std::collections::HashMap;

/// Padding token id (also used for empty/null prompts in
/// classifier-free guidance).
pub const PAD: usize = 0;
/// Unknown-word token id.
pub const UNK: usize = 1;

/// A fixed word-level tokenizer.
///
/// Token 0 is padding, token 1 is unknown; words get ids 2.. in
/// registration order, so vocabularies are stable across runs.
///
/// # Example
///
/// ```
/// use fpdq_data::Tokenizer;
/// let tok = Tokenizer::caption_grammar();
/// let ids = tok.encode("a red ball in a dark room");
/// assert_eq!(ids.len(), 7);
/// assert_eq!(tok.decode(&ids), "a red ball in a dark room");
/// ```
#[derive(Clone, Debug)]
pub struct Tokenizer {
    word_to_id: HashMap<String, usize>,
    id_to_word: Vec<String>,
}

impl Tokenizer {
    /// Builds a tokenizer from a word list (duplicates ignored).
    pub fn new(words: &[&str]) -> Self {
        let mut id_to_word = vec!["<pad>".to_string(), "<unk>".to_string()];
        let mut word_to_id = HashMap::new();
        word_to_id.insert("<pad>".to_string(), PAD);
        word_to_id.insert("<unk>".to_string(), UNK);
        for &w in words {
            if !word_to_id.contains_key(w) {
                word_to_id.insert(w.to_string(), id_to_word.len());
                id_to_word.push(w.to_string());
            }
        }
        Tokenizer { word_to_id, id_to_word }
    }

    /// The tokenizer covering the [`crate::CaptionedScenes`] grammar.
    pub fn caption_grammar() -> Self {
        Tokenizer::new(&[
            "a", "in", "room", // structure words
            "red", "green", "blue", "yellow", "magenta", "cyan", // colors
            "ball", "box", "cross", "ring", // objects
            "dark", "bright", // places
        ])
    }

    /// Vocabulary size (including pad/unk).
    pub fn vocab_size(&self) -> usize {
        self.id_to_word.len()
    }

    /// Encodes a whitespace-separated prompt.
    pub fn encode(&self, prompt: &str) -> Vec<usize> {
        prompt
            .split_whitespace()
            .map(|w| self.word_to_id.get(w).copied().unwrap_or(UNK))
            .collect()
    }

    /// Decodes token ids back to words (pad tokens are dropped).
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .filter(|&&id| id != PAD)
            .map(|&id| self.id_to_word.get(id).map(|s| s.as_str()).unwrap_or("<unk>"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_grammar_captions() {
        let tok = Tokenizer::caption_grammar();
        for cap in crate::CaptionedScenes::all_captions() {
            let ids = tok.encode(&cap);
            assert!(!ids.contains(&UNK), "caption '{cap}' has unknown words");
            assert_eq!(tok.decode(&ids), cap);
        }
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let tok = Tokenizer::caption_grammar();
        let ids = tok.encode("a purple elephant");
        assert_eq!(ids[0], tok.encode("a")[0]);
        assert_eq!(ids[1], UNK);
        assert_eq!(ids[2], UNK);
    }

    #[test]
    fn ids_are_stable() {
        let a = Tokenizer::caption_grammar();
        let b = Tokenizer::caption_grammar();
        assert_eq!(a.encode("red ball"), b.encode("red ball"));
    }

    #[test]
    fn duplicates_ignored() {
        let tok = Tokenizer::new(&["x", "x", "y"]);
        assert_eq!(tok.vocab_size(), 4); // pad, unk, x, y
    }

    #[test]
    fn decode_drops_padding() {
        let tok = Tokenizer::caption_grammar();
        let mut ids = tok.encode("red ball");
        ids.push(PAD);
        ids.push(PAD);
        assert_eq!(tok.decode(&ids), "red ball");
    }
}
