//! `TinyBedrooms`: a procedural "room scene" distribution standing in for
//! LSUN-Bedrooms (the paper's unconditional LDM dataset, Tables I/III and
//! Figure 7).
//!
//! Every sample is a 16×16 room: a wall with a window, a floor, a bed with
//! a headboard and blanket, and optionally a side table — with continuous
//! jitter in geometry and lighting, giving a structured but diverse
//! distribution.

use crate::draw::{shade, Canvas};
use crate::{jitter, Dataset};
use fpdq_tensor::Tensor;
use rand::Rng;

const WALL_TONES: [[f32; 3]; 4] = [
    [0.55, 0.45, 0.30], // warm beige
    [0.35, 0.45, 0.60], // cool blue-grey
    [0.45, 0.55, 0.40], // sage
    [0.55, 0.35, 0.35], // terracotta
];

const BLANKET_COLORS: [[f32; 3]; 5] =
    [[0.8, -0.4, -0.4], [-0.4, -0.2, 0.8], [-0.2, 0.7, -0.2], [0.8, 0.6, -0.5], [0.6, -0.3, 0.7]];

/// The procedural bedroom-scene dataset (16×16 images).
#[derive(Clone, Copy, Debug, Default)]
pub struct TinyBedrooms {
    _priv: (),
}

impl TinyBedrooms {
    /// Creates the dataset.
    pub fn new() -> Self {
        TinyBedrooms { _priv: () }
    }
}

impl Dataset for TinyBedrooms {
    fn size(&self) -> usize {
        16
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> Tensor {
        let light = rng.gen_range(0.6..1.1);
        let wall = shade(WALL_TONES[rng.gen_range(0..WALL_TONES.len())], light);
        let floor = shade([0.35, 0.22, 0.10], light * rng.gen_range(0.8..1.2));
        let blanket = BLANKET_COLORS[rng.gen_range(0..BLANKET_COLORS.len())];

        let mut c = Canvas::new(16, wall);
        // Floor: bottom band with jittered horizon.
        let horizon = 0.55 + jitter(rng, 0.08);
        c.rect(0.0, horizon, 1.0, 1.0, floor);

        // Window on the wall: bright square with dark frame.
        let wx = rng.gen_range(0.08..0.55);
        let ww = rng.gen_range(0.18..0.3);
        let wy = 0.08 + jitter(rng, 0.05);
        let glow = shade([0.9, 0.9, 0.7], light);
        c.rect(wx - 0.03, wy - 0.03, wx + ww + 0.03, wy + ww + 0.03, shade(wall, 0.5));
        c.rect(wx, wy, wx + ww, wy + ww, glow);

        // Bed: body on the floor, headboard against the wall, pillow.
        let bx = rng.gen_range(0.3..0.55);
        let bw = rng.gen_range(0.35..0.45);
        let bed_top = horizon - 0.08 + jitter(rng, 0.03);
        let frame = shade([0.30, 0.18, 0.08], light);
        c.rect(bx - 0.04, bed_top - 0.18, bx + 0.02, bed_top, frame); // headboard
        c.rect(bx, bed_top, bx + bw, 0.95, shade(blanket, light)); // blanket
        c.rect(bx + 0.02, bed_top, bx + bw * 0.4, bed_top + 0.12, shade([0.9, 0.9, 0.9], light)); // pillow

        // Optional side table.
        if rng.gen_bool(0.6) {
            let tx = if bx > 0.45 { rng.gen_range(0.08..0.2) } else { rng.gen_range(0.78..0.88) };
            c.rect(tx, horizon - 0.12, tx + 0.1, horizon + 0.15, frame);
        }
        c.into_tensor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_shape_and_range() {
        let ds = TinyBedrooms::new();
        let mut rng = StdRng::seed_from_u64(0);
        let img = ds.sample(&mut rng);
        assert_eq!(img.dims(), &[3, 16, 16]);
        assert!(img.min() >= -1.0 && img.max() <= 1.0);
    }

    #[test]
    fn scenes_are_diverse() {
        let ds = TinyBedrooms::new();
        let mut rng = StdRng::seed_from_u64(1);
        let a = ds.sample(&mut rng);
        let b = ds.sample(&mut rng);
        assert!(a.mse(&b) > 1e-3, "two consecutive scenes identical");
    }

    #[test]
    fn floor_is_below_wall_on_average() {
        let ds = TinyBedrooms::new();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = ds.batch(32, &mut rng);
        // Average blue channel: wall tones have more blue than the brown floor.
        let top = batch.narrow(2, 0, 3).mean_axis(0);
        let bottom = batch.narrow(2, 13, 3).mean_axis(0);
        let top_blue = top.narrow(0, 2, 1).mean();
        let bottom_blue = bottom.narrow(0, 2, 1).mean();
        assert!(
            top_blue > bottom_blue,
            "expected bluer walls above brown floor: {top_blue} vs {bottom_blue}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = TinyBedrooms::new();
        let a = ds.sample(&mut StdRng::seed_from_u64(5));
        let b = ds.sample(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.data(), b.data());
    }
}
