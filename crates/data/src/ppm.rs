//! PPM image export for the qualitative figures (paper Figs. 7-9).

use fpdq_tensor::Tensor;
use std::io::Write;
use std::path::Path;

/// Writes a `[3, h, w]` tensor in `[-1, 1]` as a binary PPM (P6) file,
/// upscaled by `scale` with nearest-neighbour so 16×16 samples are
/// viewable.
///
/// # Errors
///
/// Returns filesystem errors from writing.
///
/// # Panics
///
/// Panics if the tensor is not `[3, h, w]` or `scale` is zero.
pub fn save_ppm(img: &Tensor, path: impl AsRef<Path>, scale: usize) -> std::io::Result<()> {
    assert_eq!(img.ndim(), 3, "save_ppm expects [3, h, w]");
    assert_eq!(img.dim(0), 3, "save_ppm expects 3 channels");
    assert!(scale >= 1, "scale must be >= 1");
    let (h, w) = (img.dim(1), img.dim(2));
    let (oh, ow) = (h * scale, w * scale);
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{ow} {oh}\n255\n")?;
    let mut row = Vec::with_capacity(ow * 3);
    for y in 0..oh {
        row.clear();
        for x in 0..ow {
            for c in 0..3 {
                let v = img.at(&[c, y / scale, x / scale]);
                let byte = (((v + 1.0) / 2.0).clamp(0.0, 1.0) * 255.0).round() as u8;
                row.push(byte);
            }
        }
        f.write_all(&row)?;
    }
    Ok(())
}

/// Arranges equally sized `[3, h, w]` images into a `[3, H, W]` grid tensor
/// with a 1-pixel black gutter (for contact sheets).
///
/// # Panics
///
/// Panics if `images` is empty or shapes differ.
pub fn image_grid(images: &[Tensor], cols: usize) -> Tensor {
    assert!(!images.is_empty(), "image_grid of zero images");
    let (h, w) = (images[0].dim(1), images[0].dim(2));
    let cols = cols.max(1);
    let rows = images.len().div_ceil(cols);
    let (gh, gw) = (rows * (h + 1) - 1, cols * (w + 1) - 1);
    let mut out = Tensor::full(&[3, gh, gw], -1.0);
    for (i, img) in images.iter().enumerate() {
        assert_eq!(img.dims(), images[0].dims(), "image_grid shape mismatch");
        let (r, c) = (i / cols, i % cols);
        let (oy, ox) = (r * (h + 1), c * (w + 1));
        for ch in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    out.set(&[ch, oy + y, ox + x], img.at(&[ch, y, x]));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_valid_ppm_header_and_size() {
        let dir = std::env::temp_dir().join("fpdq-ppm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ppm");
        let img = Tensor::zeros(&[3, 4, 5]);
        save_ppm(&img, &path, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = String::from_utf8_lossy(&bytes[..15]);
        assert!(header.starts_with("P6\n10 8\n255\n"), "header: {header:?}");
        // 10*8 pixels * 3 bytes after the 12-byte header.
        assert_eq!(bytes.len(), 12 + 240);
        // Value 0.0 in [-1,1] maps to 128.
        assert_eq!(bytes[12], 128);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grid_layout() {
        let a = Tensor::full(&[3, 2, 2], 1.0);
        let b = Tensor::full(&[3, 2, 2], 0.0);
        let g = image_grid(&[a, b], 2);
        assert_eq!(g.dims(), &[3, 2, 5]);
        assert_eq!(g.at(&[0, 0, 0]), 1.0); // first image
        assert_eq!(g.at(&[0, 0, 2]), -1.0); // gutter
        assert_eq!(g.at(&[0, 0, 3]), 0.0); // second image
    }
}
