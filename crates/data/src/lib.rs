//! # fpdq-data
//!
//! Procedural synthetic image distributions standing in for the paper's
//! datasets, plus the caption grammar and tokenizer for text-to-image:
//!
//! | Paper dataset | Here | Used by |
//! |---|---|---|
//! | CIFAR-10 32×32 | [`TinyCifar`]: 10 classes of 8×8 geometric textures | DDIM-sim (Table II) |
//! | LSUN-Bedrooms 256×256 | [`TinyBedrooms`]: 16×16 procedural room scenes | LDM-sim (Tables I/III, Fig. 7) |
//! | LAION-5B / MS-COCO captions | [`CaptionedScenes`]: attribute-grammar scenes with deterministic captions | SD-sim / SDXL-sim (Tables IV/V, Figs. 8-10) |
//!
//! All sampling is deterministic given a seeded RNG, which the paper's
//! evaluation methodology (fixed seeds across compared runs, §VI-C)
//! requires. Images are `[3, h, w]` `f32` tensors in `[-1, 1]`.
//!
//! # Example
//!
//! ```
//! use fpdq_data::{Dataset, TinyCifar};
//! use rand::SeedableRng;
//! let ds = TinyCifar::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let img = ds.sample(&mut rng);
//! assert_eq!(img.dims(), &[3, 8, 8]);
//! ```

pub mod bedrooms;
pub mod cifar;
pub mod draw;
pub mod ppm;
pub mod scenes;
pub mod tokenizer;

pub use bedrooms::TinyBedrooms;
pub use cifar::TinyCifar;
pub use draw::Canvas;
pub use ppm::save_ppm;
pub use scenes::{CaptionedScenes, ColorName, ObjectKind, PlaceKind, SceneSpec};
pub use tokenizer::Tokenizer;

use fpdq_tensor::Tensor;
use rand::Rng;

/// A synthetic image distribution.
pub trait Dataset {
    /// Spatial size (images are square `[3, size, size]`).
    fn size(&self) -> usize;

    /// Draws one image.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Tensor;

    /// Draws a `[n, 3, size, size]` batch.
    fn batch(&self, n: usize, rng: &mut dyn rand::RngCore) -> Tensor {
        let imgs: Vec<Tensor> = (0..n).map(|_| self.sample(rng)).collect();
        let refs: Vec<&Tensor> = imgs.iter().collect();
        Tensor::stack(&refs)
    }
}

/// Uniform jitter helper in `[-amount, amount]`.
pub(crate) fn jitter(rng: &mut dyn rand::RngCore, amount: f32) -> f32 {
    rng.gen_range(-amount..=amount)
}
