//! Dequantize-on-the-fly 2-D convolution over packed weights.
//!
//! Shares the exact `im2col` lowering of the dense path
//! ([`fpdq_tensor::conv::im2col_into`]) but expands the filter bank from
//! its packed low-bit representation — the memory-traffic pattern of
//! weight-quantized convolution inference.
//!
//! Each worker thread owns a small scratch arena (decoded filter bank +
//! one `im2col` column buffer) allocated once and reused across every
//! batch element the worker processes; the per-batch allocations and
//! tensor narrowing of the original implementation are gone, and the
//! filter bank is LUT-decoded once per worker instead of once per
//! (batch, output-channel) pair.

use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use fpdq_core::TensorQuantizer;
use fpdq_tensor::conv::{im2col_into, Conv2dSpec};
use fpdq_tensor::matmul::gemm_serial;
use fpdq_tensor::parallel::parallel_rows;
use fpdq_tensor::Tensor;

/// 2-D convolution with any packed weight representation: input
/// `[n, c, h, w]`, packed weight `[o, c, kh, kw]`, optional bias `[o]`,
/// optional activation fake-quantizer (applied to the input, as the model
/// taps do).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    assert_eq!(x.ndim(), 4, "input must be [n, c, h, w]");
    let wd = weight.dims();
    assert_eq!(wd.len(), 4, "packed weight must be [o, c, kh, kw]");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (o, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(c, wc, "channel mismatch: input {c}, weight {wc}");
    if let Some(b) = bias {
        assert_eq!(b.numel(), o, "bias must have {o} elements");
    }
    let x_q = match act {
        Some(q) => q.quantize(x),
        None => x.clone(),
    };
    let xd = x_q.data();
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let ckk = c * kh * kw;
    let chw = c * h * w;
    let mut out = vec![0.0f32; n * o * oh * ow];
    parallel_rows(&mut out, n, o * oh * ow, 1, |batch_start, chunk| {
        // Per-thread scratch arena, reused across this worker's batches.
        let mut filters = vec![0.0f32; o * ckk];
        weight.decode_range_into(0, &mut filters);
        let mut cols = vec![0.0f32; ckk * oh * ow];
        for (bi, obatch) in chunk.chunks_mut(o * oh * ow).enumerate() {
            let batch = batch_start + bi;
            im2col_into(&xd[batch * chw..(batch + 1) * chw], c, h, w, kh, kw, spec, &mut cols);
            // Prefill with the bias, then accumulate the filter × column
            // product through the same row-blocked kernel as the dense
            // conv (which also skips all-zero filter taps, preserving the
            // quantization-induced sparsity shortcut).
            match bias {
                Some(b) => {
                    for (oc, plane) in obatch.chunks_mut(oh * ow).enumerate() {
                        plane.fill(b.data()[oc]);
                    }
                }
                None => obatch.fill(0.0),
            }
            gemm_serial(&filters, &cols, obatch, o, ckk, oh * ow);
        }
    });
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// 2-D convolution with packed FP weights (see [`conv2d_packed`]).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed_fp(
    x: &Tensor,
    weight: &PackedFpTensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    conv2d_packed(x, weight, bias, spec, act)
}

/// 2-D convolution with packed INT weights (see [`conv2d_packed`]).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed_int(
    x: &Tensor,
    weight: &PackedIntTensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    conv2d_packed(x, weight, bias, spec, act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        let b = Tensor::randn(&[5], &mut rng);
        for (fmt, spec) in [
            (FpFormat::new(4, 3), Conv2dSpec::new(1, 1)),
            (FpFormat::new(2, 1), Conv2dSpec::new(2, 1)),
        ] {
            let packed = PackedFpTensor::encode(&w, fmt);
            let fast = conv2d_packed_fp(&x, &packed, Some(&b), spec, None);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            assert_eq!(fast.dims(), reference.dims());
            for (a, e) in fast.data().iter().zip(reference.data()) {
                assert!((a - e).abs() < 1e-4, "{fmt}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn packed_int_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        let b = Tensor::randn(&[4], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        for bits in [4u32, 8] {
            let fmt = IntFormat::fit(&w, bits);
            let packed = PackedIntTensor::encode(&w, fmt);
            let fast = conv2d_packed_int(&x, &packed, Some(&b), spec, None);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            for (a, e) in fast.data().iter().zip(reference.data()) {
                assert!((a - e).abs() < 1e-4, "INT{bits}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn packed_conv_with_act_quant_matches_model_taps() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let wfmt = FpFormat::new(2, 1);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, wfmt);
        let fast = conv2d_packed_fp(&x, &packed, None, spec, Some(&act));
        let reference = act.quantize(&x).conv2d(&wfmt.quantize(&w), None, spec);
        for (a, e) in fast.data().iter().zip(reference.data()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = PackedFpTensor::encode(&Tensor::zeros(&[2, 2, 3, 3]), FpFormat::new(4, 3));
        conv2d_packed_fp(&x, &w, None, Conv2dSpec::new(1, 1), None);
    }
}
