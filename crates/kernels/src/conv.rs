//! Implicit-GEMM 2-D convolution over packed weights — the conv face of
//! the packed panel engine, not a parallel implementation of it.
//!
//! The convolution is the GEMM `out[o, oh·ow] = filters[o, ckk] ·
//! colsᵀ[ckk, oh·ow]`, but the column matrix never exists: output-pixel
//! tiles are lowered on the fly ([`fpdq_tensor::conv::im2col_panel_into`])
//! straight into the interleaved `[ckk][NT_NR]` activation micro-panels
//! that the shared NT micro-kernel
//! ([`fpdq_tensor::matmul::gemm_nt_panel`]) consumes. Conv therefore
//! inherits every GEMM win instead of duplicating it:
//!
//! * **AVX2/NEON dispatch** — the panel kernel is the dispatched one; the
//!   explicit-ISA entry points (`conv2d_packed_fused_as`) thread the same
//!   `Isa` through decode, fused quantization and the micro-kernel.
//! * **Fused boundary-table activation quant** — each input image streams
//!   through [`fpdq_core::PanelQuantizer`]'s boundary tables (per-tensor
//!   or per-input-channel) into a per-worker scratch image exactly once
//!   before lowering: no whole-tensor fake-quant pass, no `log2`/`powf`.
//! * **Shared once-per-call filter-bank decode** — the packed filter bank
//!   expands exactly once per call (in parallel, on the 8-row decode
//!   grid) into a read-only `[o, ckk]` bank swept by every worker, so at
//!   batch scale the weight-decode cost is amortised across every image
//!   of the step — the packed GEMM's batching property.
//! * **Regime scheduling** — [`pick_conv_regime`] costs both parallel
//!   decompositions in wall-clock tile units (see [`crate::schedule`]).
//!
//! # Tile schedule
//!
//! * **Batch-parallel**: each worker owns one `ckk × NT_NR` panel arena
//!   (plus quantized-image scratch) reused across every image and panel
//!   tile it processes; panels are lowered and consumed in place, so the
//!   per-image footprint is one micro-panel, not an `im2col` matrix.
//! * **Channel-parallel** (the batch-1 sampling case, and mid-size
//!   batches whose grains would under-fill the batch split): images run
//!   in sequence; each image's panels are lowered once into a shared
//!   read-only bank (in parallel over panel tiles), then the
//!   output-channel range splits across workers on the [`NT_MR`]-row
//!   register-block grid against the shared filter bank.
//!
//! Both regimes feed the identical micro-kernel, which accumulates every
//! output element in plain ascending-`k` order in every code path (no
//! FMA, same operand order — see [`fpdq_tensor::simd`]), and the bias is
//! added in a separate epilogue after the panel sweep. Row blocking,
//! panel order, worker count and ISA therefore cannot change a single
//! output bit: batch-N output for image `i` is bit-identical to the
//! batch-1 run on image `i` (pinned by `tests/batched_consistency.rs`),
//! and the fused activation quant is bit-exact with quantize-first
//! execution.

use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use crate::schedule::{pick_conv_regime, ConvRegime};
use fpdq_core::{PanelQuantizer, TensorQuantizer};
use fpdq_tensor::conv::{im2col_panel_into, Conv2dSpec};
use fpdq_tensor::matmul::{gemm_nt_panel_as, NT_MR, NT_NR};
use fpdq_tensor::parallel::{num_threads, parallel_rows_aligned_in, parallel_rows_in};
use fpdq_tensor::simd::{self, Isa};
use fpdq_tensor::Tensor;

/// 2-D convolution with any packed weight representation: input
/// `[n, c, h, w]`, packed weight `[o, c, kh, kw]`, optional bias `[o]`,
/// optional per-tensor activation fake-quantizer fused into the input
/// lowering (as the model taps do).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    let pq = act.map(PanelQuantizer::per_tensor);
    conv2d_packed_fused(x, weight, bias, spec, pq.as_ref())
}

/// [`conv2d_packed`] with an explicit [`PanelQuantizer`], covering the
/// per-channel activation granularity: with `channels == c`, input
/// channel `ci` quantizes through table `ci`.
///
/// # Panics
///
/// Panics on rank/shape mismatches, or if a per-channel quantizer's
/// channel count differs from `c`.
pub fn conv2d_packed_fused<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&PanelQuantizer>,
) -> Tensor {
    conv2d_packed_fused_as(x, weight, bias, spec, act, simd::active())
}

/// [`conv2d_packed_fused`] on an explicit ISA path: filter decode, the
/// fused input quantization *and* the NT micro-kernel all run the named
/// implementation (see [`fpdq_tensor::simd`]). Results are bit-identical
/// across ISAs; an unsupported `isa` falls back to scalar.
///
/// # Panics
///
/// Panics on rank/shape mismatches, or if a per-channel quantizer's
/// channel count differs from `c`.
pub fn conv2d_packed_fused_as<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&PanelQuantizer>,
    isa: Isa,
) -> Tensor {
    conv2d_packed_fused_in(x, weight, bias, spec, act, isa, num_threads())
}

/// [`conv2d_packed_fused_as`] with an explicit worker count: both the
/// regime decision ([`pick_conv_regime`]) and the parallel splits use
/// `workers` instead of the process-wide thread count, so the batched
/// differential suite can sweep worker counts in one process. Results
/// are bit-identical for every worker count.
///
/// # Panics
///
/// Panics on rank/shape mismatches, or if a per-channel quantizer's
/// channel count differs from `c`.
#[allow(clippy::too_many_arguments)] // the explicit-schedule test/tuning entry point
pub fn conv2d_packed_fused_in<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    workers: usize,
) -> Tensor {
    assert_eq!(x.ndim(), 4, "input must be [n, c, h, w]");
    let wd = weight.dims();
    assert_eq!(wd.len(), 4, "packed weight must be [o, c, kh, kw]");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (o, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(c, wc, "channel mismatch: input {c}, weight {wc}");
    if let Some(b) = bias {
        assert_eq!(b.numel(), o, "bias must have {o} elements");
    }
    if let Some(pq) = act {
        assert!(
            pq.channels() == 1 || pq.channels() == c,
            "per-channel activation quantizer has {} channels for c = {c}",
            pq.channels()
        );
    }
    let xd = x.data();
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let ckk = c * kh * kw;
    let chw = c * h * w;
    let ohow = oh * ow;
    let mut out = vec![0.0f32; n * o * ohow];
    if n == 0 || o == 0 || ohow == 0 {
        return Tensor::from_vec(out, &[n, o, oh, ow]);
    }
    if ckk == 0 {
        // Empty reduction (zero input channels or a zero-extent kernel):
        // every output pixel is the bare bias — same as the dense path.
        for obatch in out.chunks_mut(o * ohow) {
            add_bias(obatch, bias, ohow, 0);
        }
        return Tensor::from_vec(out, &[n, o, oh, ow]);
    }
    // The packed filter bank expands exactly once per call — shared
    // read-only by every worker in both regimes, so the decode cost is
    // paid per step, not per image or per worker.
    let mut filters = vec![0.0f32; o * ckk];
    parallel_rows_in(workers, &mut filters, o, ckk, 8, |r0, chunk| {
        weight.decode_range_into_as(isa, r0 * ckk, chunk);
    });
    let npanels = ohow.div_ceil(NT_NR);
    match pick_conv_regime(n, o, workers) {
        ConvRegime::BatchParallel => {
            // Per-thread arena: one quantized-image scratch plus one
            // `ckk × NT_NR` micro-panel, reused across this worker's
            // batches — panels are lowered and consumed on the fly.
            parallel_rows_in(workers, &mut out, n, o * ohow, 1, |batch_start, chunk| {
                let mut panel = vec![0.0f32; ckk * NT_NR];
                let mut xq = act.map(|_| vec![0.0f32; chw]);
                for (bi, obatch) in chunk.chunks_mut(o * ohow).enumerate() {
                    let batch = batch_start + bi;
                    let src = &xd[batch * chw..(batch + 1) * chw];
                    let img = quantize_image(src, act, xq.as_deref_mut(), h * w, isa);
                    for t in 0..npanels {
                        let j0 = t * NT_NR;
                        let nw = NT_NR.min(ohow - j0);
                        im2col_panel_into(img, c, h, w, kh, kw, spec, j0, nw, &mut panel);
                        gemm_nt_panel_as(isa, &filters, &panel, obatch, o, ckk, ohow, j0, nw);
                    }
                    add_bias(obatch, bias, ohow, 0);
                }
            });
        }
        ConvRegime::ChannelParallel => {
            // Images in sequence; each image's panels are lowered once
            // into a shared bank (parallel over panel tiles), then the
            // output channels split across workers on the register-block
            // grid against the shared filter bank.
            let mut xq = act.map(|_| vec![0.0f32; chw]);
            let mut bank = vec![0.0f32; npanels * ckk * NT_NR];
            for batch in 0..n {
                let src = &xd[batch * chw..(batch + 1) * chw];
                let img = quantize_image(src, act, xq.as_deref_mut(), h * w, isa);
                parallel_rows_in(workers, &mut bank, npanels, ckk * NT_NR, 1, |t0, pchunk| {
                    for (ti, panel) in pchunk.chunks_mut(ckk * NT_NR).enumerate() {
                        let j0 = (t0 + ti) * NT_NR;
                        let nw = NT_NR.min(ohow - j0);
                        im2col_panel_into(img, c, h, w, kh, kw, spec, j0, nw, panel);
                    }
                });
                let obatch = &mut out[batch * o * ohow..(batch + 1) * o * ohow];
                parallel_rows_aligned_in(workers, obatch, o, ohow, 1, NT_MR, |oc0, chunk| {
                    let rows = chunk.len() / ohow;
                    let frows = &filters[oc0 * ckk..(oc0 + rows) * ckk];
                    for (t, panel) in bank.chunks(ckk * NT_NR).enumerate() {
                        let j0 = t * NT_NR;
                        let nw = NT_NR.min(ohow - j0);
                        gemm_nt_panel_as(isa, frows, panel, chunk, rows, ckk, ohow, j0, nw);
                    }
                    add_bias(chunk, bias, ohow, oc0);
                });
            }
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Fused input quantization: streams `src` (`[c, h, w]` flat) through the
/// boundary tables into `scratch` and returns it, or passes `src` through
/// untouched when no quantizer is installed.
fn quantize_image<'a>(
    src: &'a [f32],
    act: Option<&PanelQuantizer>,
    scratch: Option<&'a mut [f32]>,
    plane: usize,
    isa: Isa,
) -> &'a [f32] {
    match (act, scratch) {
        (Some(pq), Some(buf)) => {
            pq.quantize_panel_into_as(isa, src, buf, plane);
            buf
        }
        _ => src,
    }
}

/// Adds the bias to an output-channel block *after* the panel sweep (the
/// NT micro-kernel overwrites its output columns, so the bias cannot be
/// prefilled). One add per output element, identical in both regimes.
fn add_bias(chunk: &mut [f32], bias: Option<&Tensor>, ohow: usize, oc0: usize) {
    if let Some(b) = bias {
        for (oc, plane) in chunk.chunks_mut(ohow).enumerate() {
            let bv = b.data()[oc0 + oc];
            for v in plane.iter_mut() {
                *v += bv;
            }
        }
    }
}

/// 2-D convolution with packed FP weights (see [`conv2d_packed`]).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed_fp(
    x: &Tensor,
    weight: &PackedFpTensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    conv2d_packed(x, weight, bias, spec, act)
}

/// 2-D convolution with packed INT weights (see [`conv2d_packed`]).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed_int(
    x: &Tensor,
    weight: &PackedIntTensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    conv2d_packed(x, weight, bias, spec, act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        let b = Tensor::randn(&[5], &mut rng);
        for (fmt, spec) in [
            (FpFormat::new(4, 3), Conv2dSpec::new(1, 1)),
            (FpFormat::new(2, 1), Conv2dSpec::new(2, 1)),
        ] {
            let packed = PackedFpTensor::encode(&w, fmt);
            let fast = conv2d_packed_fp(&x, &packed, Some(&b), spec, None);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            assert_eq!(fast.dims(), reference.dims());
            for (a, e) in fast.data().iter().zip(reference.data()) {
                assert!((a - e).abs() < 1e-4, "{fmt}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn packed_int_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        let b = Tensor::randn(&[4], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        for bits in [4u32, 8] {
            let fmt = IntFormat::fit(&w, bits);
            let packed = PackedIntTensor::encode(&w, fmt);
            let fast = conv2d_packed_int(&x, &packed, Some(&b), spec, None);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            for (a, e) in fast.data().iter().zip(reference.data()) {
                assert!((a - e).abs() < 1e-4, "INT{bits}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn packed_conv_with_act_quant_matches_model_taps() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let wfmt = FpFormat::new(2, 1);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, wfmt);
        let fast = conv2d_packed_fp(&x, &packed, None, spec, Some(&act));
        let reference = act.quantize(&x).conv2d(&wfmt.quantize(&w), None, spec);
        for (a, e) in fast.data().iter().zip(reference.data()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    /// Reference for the fused path: fake-quantize the whole input first,
    /// then the identical packed conv without the fused quantizer.
    fn reference_wa(
        x: &Tensor,
        w: &PackedFpTensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
        act: &TensorQuantizer,
    ) -> Tensor {
        conv2d_packed_fp(&act.quantize(x), w, bias, spec, None)
    }

    #[test]
    fn fused_act_quant_is_bit_exact_with_prequantized_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[3, 4, 7, 7], &mut rng).mul_scalar(1.7);
        let w = Tensor::randn(&[6, 4, 3, 3], &mut rng);
        let b = Tensor::randn(&[6], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        for wfmt in [FpFormat::new(4, 3), FpFormat::new(2, 1)] {
            let packed = PackedFpTensor::encode(&w, wfmt);
            for act in [
                TensorQuantizer::Fp(FpFormat::new(4, 3)),
                TensorQuantizer::Fp(FpFormat::new(2, 1)),
                TensorQuantizer::Int(IntFormat::fit(&x, 8)),
                TensorQuantizer::Int(IntFormat::fit(&x, 4)),
            ] {
                let fused = conv2d_packed_fp(&x, &packed, Some(&b), spec, Some(&act));
                let reference = reference_wa(&x, &packed, Some(&b), spec, &act);
                for (i, (a, e)) in fused.data().iter().zip(reference.data()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        e.to_bits(),
                        "{wfmt}/{act} elem {i}: {a} vs {e} not bit-exact"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_handles_nan_and_inf_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut vals: Vec<f32> = Tensor::randn(&[2 * 3 * 5 * 5], &mut rng).data().to_vec();
        vals[7] = f32::NAN;
        vals[31] = f32::INFINITY;
        vals[99] = f32::NEG_INFINITY;
        let x = Tensor::from_vec(vals, &[2, 3, 5, 5]);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        for act in [
            TensorQuantizer::Fp(FpFormat::new(2, 1)),
            TensorQuantizer::Int(IntFormat::from_range(8, -2.0, 2.0)),
        ] {
            let fused = conv2d_packed_fp(&x, &packed, None, spec, Some(&act));
            let reference = reference_wa(&x, &packed, None, spec, &act);
            assert!(fused.data().iter().all(|v| v.is_finite()), "{act}: non-finite output");
            for (a, e) in fused.data().iter().zip(reference.data()) {
                assert_eq!(a.to_bits(), e.to_bits(), "{act}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn per_channel_fused_matches_planewise_prequantization() {
        let mut rng = StdRng::seed_from_u64(6);
        let (c, h, w_) = (3usize, 5usize, 5usize);
        let x = Tensor::randn(&[2, c, h, w_], &mut rng);
        let w = Tensor::randn(&[4, c, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        let formats: Vec<TensorQuantizer> = (0..c)
            .map(|ci| TensorQuantizer::Fp(FpFormat::with_bias(4, 3, 7.0 + ci as f32)))
            .collect();
        let pq = PanelQuantizer::per_channel(&formats);
        let fused = conv2d_packed_fused(&x, &packed, None, spec, Some(&pq));
        // Reference: quantize each input-channel plane with its format.
        let mut xq = x.clone();
        for b in 0..2 {
            for (ci, fmt) in formats.iter().enumerate() {
                let start = (b * c + ci) * h * w_;
                let plane = Tensor::from_vec(x.data()[start..start + h * w_].to_vec(), &[h * w_]);
                let qplane = fmt.quantize(&plane);
                xq.data_mut()[start..start + h * w_].copy_from_slice(qplane.data());
            }
        }
        let reference = conv2d_packed_fused(&xq, &packed, None, spec, None);
        for (i, (a, e)) in fused.data().iter().zip(reference.data()).enumerate() {
            assert_eq!(a.to_bits(), e.to_bits(), "elem {i}: {a} vs {e}");
        }
    }

    #[test]
    fn regimes_are_bit_identical_at_worker_count_boundaries() {
        // n around the worker count is exactly where the old `n < workers`
        // heuristic flipped schedules; sweep batch sizes across the
        // boundary (and worker counts across regimes) and require
        // identical bits everywhere, including batch-N slice i ==
        // the batch-1 run on image i.
        use crate::schedule::{pick_conv_regime, ConvRegime};
        use fpdq_tensor::simd;
        let mut rng = StdRng::seed_from_u64(31);
        let (c, o, hw) = (3usize, 8usize, 5usize);
        let spec = Conv2dSpec::new(1, 1);
        let w = Tensor::randn(&[o, c, 3, 3], &mut rng);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let pq = PanelQuantizer::per_tensor(&act);
        // Both regimes must actually occur in this sweep.
        let workers_swept = [1usize, 2, 4, 8];
        let batches = [1usize, 3, 4, 5, 8];
        let mut seen = std::collections::HashSet::new();
        for &n in &batches {
            let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
            let singles: Vec<Tensor> = (0..n)
                .map(|i| {
                    let img = Tensor::from_vec(
                        x.data()[i * c * hw * hw..(i + 1) * c * hw * hw].to_vec(),
                        &[1, c, hw, hw],
                    );
                    conv2d_packed_fused_in(&img, &packed, None, spec, Some(&pq), simd::active(), 1)
                })
                .collect();
            for &workers in &workers_swept {
                seen.insert(pick_conv_regime(n, o, workers));
                let full = conv2d_packed_fused_in(
                    &x,
                    &packed,
                    None,
                    spec,
                    Some(&pq),
                    simd::active(),
                    workers,
                );
                let plane = full.numel() / n;
                for (i, single) in singles.iter().enumerate() {
                    for (j, (a, e)) in full.data()[i * plane..(i + 1) * plane]
                        .iter()
                        .zip(single.data())
                        .enumerate()
                    {
                        assert_eq!(
                            a.to_bits(),
                            e.to_bits(),
                            "n {n} workers {workers} img {i} elem {j}: {a} vs {e}"
                        );
                    }
                }
            }
        }
        assert!(seen.contains(&ConvRegime::BatchParallel), "sweep never hit batch-parallel");
        assert!(seen.contains(&ConvRegime::ChannelParallel), "sweep never hit channel-parallel");
    }

    #[test]
    fn degenerate_conv_shapes_are_panic_free() {
        let fmt = FpFormat::new(4, 3);
        // Zero batch.
        let w = PackedFpTensor::encode(&Tensor::zeros(&[2, 3, 3, 3]), fmt);
        let y =
            conv2d_packed_fp(&Tensor::zeros(&[0, 3, 5, 5]), &w, None, Conv2dSpec::new(1, 1), None);
        assert_eq!(y.dims(), &[0, 2, 5, 5]);
        // Zero input channels: an empty reduction — zeros without a bias,
        // the broadcast bias with one (same as the dense reference).
        let w2 = PackedFpTensor::encode(&Tensor::zeros(&[2, 0, 3, 3]), fmt);
        let y2 =
            conv2d_packed_fp(&Tensor::zeros(&[1, 0, 5, 5]), &w2, None, Conv2dSpec::new(1, 1), None);
        assert_eq!(y2.dims(), &[1, 2, 5, 5]);
        assert!(y2.data().iter().all(|&v| v == 0.0));
        let b = Tensor::from_vec(vec![0.5, -1.25], &[2]);
        let y2b = conv2d_packed_fp(
            &Tensor::zeros(&[1, 0, 5, 5]),
            &w2,
            Some(&b),
            Conv2dSpec::new(1, 1),
            None,
        );
        for (oc, plane) in y2b.data().chunks(25).enumerate() {
            assert!(plane.iter().all(|&v| v == b.data()[oc]), "channel {oc} not bias-filled");
        }
        // Zero output channels.
        let w3 = PackedFpTensor::encode(&Tensor::zeros(&[0, 3, 3, 3]), fmt);
        let y3 =
            conv2d_packed_fp(&Tensor::zeros(&[2, 3, 5, 5]), &w3, None, Conv2dSpec::new(1, 1), None);
        assert_eq!(y3.dims(), &[2, 0, 5, 5]);
        assert!(y3.data().is_empty());
        // Kernel exceeding the padded input: empty output plane, no OOB.
        let w4 = PackedFpTensor::encode(&Tensor::zeros(&[2, 3, 5, 5]), fmt);
        let y4 =
            conv2d_packed_fp(&Tensor::zeros(&[2, 3, 2, 6]), &w4, None, Conv2dSpec::new(1, 0), None);
        assert_eq!(y4.dims(), &[2, 2, 0, 2]);
        assert!(y4.data().is_empty());
    }

    #[test]
    fn edge_shapes_match_dense_reference() {
        // The degenerate/edge sweep of the implicit-GEMM path against the
        // dense conv on the *same* quantized weights: kernels at least as
        // large as the (padded) image, stride above the kernel extent,
        // and 1×1 pointwise lowering. Every worker count must agree.
        let mut rng = StdRng::seed_from_u64(40);
        for (h, w_, kh, kw, stride, padding) in [
            (2usize, 2usize, 3usize, 3usize, 1usize, 1usize), // kernel > image, padded
            (3, 5, 3, 3, 1, 2),                               // padding > image edge
            (6, 6, 2, 2, 3, 0),                               // stride > kernel
            (2, 6, 2, 3, 3, 1),                               // mixed tall/wide
            (5, 5, 1, 1, 1, 0),                               // pointwise
        ] {
            let x = Tensor::randn(&[2, 3, h, w_], &mut rng);
            let w = Tensor::randn(&[5, 3, kh, kw], &mut rng);
            let b = Tensor::randn(&[5], &mut rng);
            let spec = Conv2dSpec::new(stride, padding);
            let fmt = FpFormat::new(4, 3);
            let packed = PackedFpTensor::encode(&w, fmt);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            for workers in [1usize, 2, 8] {
                let fast = conv2d_packed_fused_in(
                    &x,
                    &packed,
                    Some(&b),
                    spec,
                    None,
                    simd::active(),
                    workers,
                );
                assert_eq!(fast.dims(), reference.dims(), "k={kh}x{kw} s={stride} p={padding}");
                for (a, e) in fast.data().iter().zip(reference.data()) {
                    assert!(
                        (a - e).abs() < 1e-4,
                        "k={kh}x{kw} s={stride} p={padding} workers={workers}: {a} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = PackedFpTensor::encode(&Tensor::zeros(&[2, 2, 3, 3]), FpFormat::new(4, 3));
        conv2d_packed_fp(&x, &w, None, Conv2dSpec::new(1, 1), None);
    }
}
