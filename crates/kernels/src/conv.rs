//! Dequantize-on-the-fly 2-D convolution over packed weights, with the
//! activation quantizer fused into the per-batch pipeline.
//!
//! Shares the exact `im2col` lowering of the dense path
//! ([`fpdq_tensor::conv::im2col_into`]) but expands the filter bank from
//! its packed low-bit representation — the memory-traffic pattern of
//! weight-quantized convolution inference. Input activations quantize
//! through the boundary tables of [`fpdq_core::BoundaryQuantizer`]
//! (per-tensor or per-input-channel) into a per-worker scratch image just
//! before lowering: no whole-tensor fake-quant pass, no `log2`/`powf`.
//!
//! # Tile schedule
//!
//! The packed filter bank is decoded **once per call** into a shared
//! read-only buffer (in parallel, on the 8-row decode grid) — not once
//! per worker or once per image — so at batch scale the weight-decode
//! cost is amortised across every image of the step. Execution then
//! follows one of two regimes, picked by [`pick_conv_regime`] from the
//! measured tile counts (batch grains vs output-channel tiles against
//! the worker count — see [`crate::schedule`] for why raw `n < workers`
//! comparisons misschedule mid-size batches):
//!
//! * **Batch-parallel**: each worker owns a scratch arena (one `im2col`
//!   buffer + quantized-image scratch) allocated once and reused across
//!   every batch element the worker processes, sweeping the shared
//!   filter bank.
//! * **Channel-parallel** (the batch-1 sampling case, and mid-size
//!   batches whose grains would under-fill the batch split): images run
//!   in sequence; within one image the output-channel range is split
//!   across workers on the 4-row block grid against the shared filters
//!   and a shared `im2col` lowering.
//!
//! Both regimes group filter rows in the same 4-row blocks as the serial
//! kernel (`parallel_rows_aligned_in`), so the schedule does not change
//! the results: batch-N output for image `i` is bit-identical to the
//! batch-1 run on image `i`, across regimes, worker counts and ISAs
//! (pinned by `tests/batched_consistency.rs`).

use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use crate::schedule::{pick_conv_regime, ConvRegime};
use fpdq_core::{PanelQuantizer, TensorQuantizer};
use fpdq_tensor::conv::{im2col_into, Conv2dSpec};
use fpdq_tensor::matmul::gemm_serial;
use fpdq_tensor::parallel::{num_threads, parallel_rows_aligned_in, parallel_rows_in};
use fpdq_tensor::simd::{self, Isa};
use fpdq_tensor::Tensor;

/// 2-D convolution with any packed weight representation: input
/// `[n, c, h, w]`, packed weight `[o, c, kh, kw]`, optional bias `[o]`,
/// optional per-tensor activation fake-quantizer fused into the input
/// lowering (as the model taps do).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    let pq = act.map(PanelQuantizer::per_tensor);
    conv2d_packed_fused(x, weight, bias, spec, pq.as_ref())
}

/// [`conv2d_packed`] with an explicit [`PanelQuantizer`], covering the
/// per-channel activation granularity: with `channels == c`, input
/// channel `ci` quantizes through table `ci`.
///
/// # Panics
///
/// Panics on rank/shape mismatches, or if a per-channel quantizer's
/// channel count differs from `c`.
pub fn conv2d_packed_fused<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&PanelQuantizer>,
) -> Tensor {
    conv2d_packed_fused_as(x, weight, bias, spec, act, simd::active())
}

/// [`conv2d_packed_fused`] on an explicit ISA path: filter decode and the
/// fused input quantization run the named implementation (see
/// [`fpdq_tensor::simd`]; the NN tile kernel after the `im2col` lowering
/// is shared by all paths). Results are bit-identical across ISAs; an
/// unsupported `isa` falls back to scalar.
///
/// # Panics
///
/// Panics on rank/shape mismatches, or if a per-channel quantizer's
/// channel count differs from `c`.
pub fn conv2d_packed_fused_as<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&PanelQuantizer>,
    isa: Isa,
) -> Tensor {
    conv2d_packed_fused_in(x, weight, bias, spec, act, isa, num_threads())
}

/// [`conv2d_packed_fused_as`] with an explicit worker count: both the
/// regime decision ([`pick_conv_regime`]) and the parallel splits use
/// `workers` instead of the process-wide thread count, so the batched
/// differential suite can sweep worker counts in one process. Results
/// are bit-identical for every worker count.
///
/// # Panics
///
/// Panics on rank/shape mismatches, or if a per-channel quantizer's
/// channel count differs from `c`.
#[allow(clippy::too_many_arguments)] // the explicit-schedule test/tuning entry point
pub fn conv2d_packed_fused_in<W: PackedWeights>(
    x: &Tensor,
    weight: &W,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    workers: usize,
) -> Tensor {
    assert_eq!(x.ndim(), 4, "input must be [n, c, h, w]");
    let wd = weight.dims();
    assert_eq!(wd.len(), 4, "packed weight must be [o, c, kh, kw]");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (o, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(c, wc, "channel mismatch: input {c}, weight {wc}");
    if let Some(b) = bias {
        assert_eq!(b.numel(), o, "bias must have {o} elements");
    }
    if let Some(pq) = act {
        assert!(
            pq.channels() == 1 || pq.channels() == c,
            "per-channel activation quantizer has {} channels for c = {c}",
            pq.channels()
        );
    }
    let xd = x.data();
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let ckk = c * kh * kw;
    let chw = c * h * w;
    let ohow = oh * ow;
    let mut out = vec![0.0f32; n * o * ohow];
    if n == 0 || o == 0 || ohow == 0 || ckk == 0 {
        return Tensor::from_vec(out, &[n, o, oh, ow]);
    }
    // The packed filter bank expands exactly once per call — shared
    // read-only by every worker in both regimes, so the decode cost is
    // paid per step, not per image or per worker.
    let mut filters = vec![0.0f32; o * ckk];
    parallel_rows_in(workers, &mut filters, o, ckk, 8, |r0, chunk| {
        weight.decode_range_into_as(isa, r0 * ckk, chunk);
    });
    match pick_conv_regime(n, o, workers) {
        ConvRegime::BatchParallel => {
            // Per-thread scratch arena, reused across this worker's
            // batches.
            parallel_rows_in(workers, &mut out, n, o * ohow, 1, |batch_start, chunk| {
                let mut cols = vec![0.0f32; ckk * ohow];
                let mut xq = act.map(|_| vec![0.0f32; chw]);
                for (bi, obatch) in chunk.chunks_mut(o * ohow).enumerate() {
                    let batch = batch_start + bi;
                    let src = &xd[batch * chw..(batch + 1) * chw];
                    let img = quantize_image(src, act, xq.as_deref_mut(), h * w, isa);
                    im2col_into(img, c, h, w, kh, kw, spec, &mut cols);
                    prefill_bias(obatch, bias, ohow, 0);
                    gemm_serial(&filters, &cols, obatch, o, ckk, ohow);
                }
            });
        }
        ConvRegime::ChannelParallel => {
            // Images in sequence; workers split the output channels on
            // the 4-row block grid against the shared filter bank. The
            // shared `im2col` lowering is computed once per image.
            let mut cols = vec![0.0f32; ckk * ohow];
            let mut xq = act.map(|_| vec![0.0f32; chw]);
            for batch in 0..n {
                let src = &xd[batch * chw..(batch + 1) * chw];
                let img = quantize_image(src, act, xq.as_deref_mut(), h * w, isa);
                im2col_into(img, c, h, w, kh, kw, spec, &mut cols);
                let obatch = &mut out[batch * o * ohow..(batch + 1) * o * ohow];
                parallel_rows_aligned_in(workers, obatch, o, ohow, 1, 4, |oc0, chunk| {
                    let rows = chunk.len() / ohow;
                    prefill_bias(chunk, bias, ohow, oc0);
                    gemm_serial(
                        &filters[oc0 * ckk..(oc0 + rows) * ckk],
                        &cols,
                        chunk,
                        rows,
                        ckk,
                        ohow,
                    );
                });
            }
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Fused input quantization: streams `src` (`[c, h, w]` flat) through the
/// boundary tables into `scratch` and returns it, or passes `src` through
/// untouched when no quantizer is installed.
fn quantize_image<'a>(
    src: &'a [f32],
    act: Option<&PanelQuantizer>,
    scratch: Option<&'a mut [f32]>,
    plane: usize,
    isa: Isa,
) -> &'a [f32] {
    match (act, scratch) {
        (Some(pq), Some(buf)) => {
            pq.quantize_panel_into_as(isa, src, buf, plane);
            buf
        }
        _ => src,
    }
}

/// Prefills an output-channel block with its bias values (or zeros), so
/// the row-blocked kernel can accumulate on top — preserving the
/// quantization-induced sparsity shortcut of the dense conv.
fn prefill_bias(chunk: &mut [f32], bias: Option<&Tensor>, ohow: usize, oc0: usize) {
    match bias {
        Some(b) => {
            for (oc, plane) in chunk.chunks_mut(ohow).enumerate() {
                plane.fill(b.data()[oc0 + oc]);
            }
        }
        None => chunk.fill(0.0),
    }
}

/// 2-D convolution with packed FP weights (see [`conv2d_packed`]).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed_fp(
    x: &Tensor,
    weight: &PackedFpTensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    conv2d_packed(x, weight, bias, spec, act)
}

/// 2-D convolution with packed INT weights (see [`conv2d_packed`]).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_packed_int(
    x: &Tensor,
    weight: &PackedIntTensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Option<&TensorQuantizer>,
) -> Tensor {
    conv2d_packed(x, weight, bias, spec, act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        let b = Tensor::randn(&[5], &mut rng);
        for (fmt, spec) in [
            (FpFormat::new(4, 3), Conv2dSpec::new(1, 1)),
            (FpFormat::new(2, 1), Conv2dSpec::new(2, 1)),
        ] {
            let packed = PackedFpTensor::encode(&w, fmt);
            let fast = conv2d_packed_fp(&x, &packed, Some(&b), spec, None);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            assert_eq!(fast.dims(), reference.dims());
            for (a, e) in fast.data().iter().zip(reference.data()) {
                assert!((a - e).abs() < 1e-4, "{fmt}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn packed_int_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        let b = Tensor::randn(&[4], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        for bits in [4u32, 8] {
            let fmt = IntFormat::fit(&w, bits);
            let packed = PackedIntTensor::encode(&w, fmt);
            let fast = conv2d_packed_int(&x, &packed, Some(&b), spec, None);
            let reference = x.conv2d(&fmt.quantize(&w), Some(&b), spec);
            for (a, e) in fast.data().iter().zip(reference.data()) {
                assert!((a - e).abs() < 1e-4, "INT{bits}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn packed_conv_with_act_quant_matches_model_taps() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let wfmt = FpFormat::new(2, 1);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, wfmt);
        let fast = conv2d_packed_fp(&x, &packed, None, spec, Some(&act));
        let reference = act.quantize(&x).conv2d(&wfmt.quantize(&w), None, spec);
        for (a, e) in fast.data().iter().zip(reference.data()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    /// Reference for the fused path: fake-quantize the whole input first,
    /// then the identical packed conv without the fused quantizer.
    fn reference_wa(
        x: &Tensor,
        w: &PackedFpTensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
        act: &TensorQuantizer,
    ) -> Tensor {
        conv2d_packed_fp(&act.quantize(x), w, bias, spec, None)
    }

    #[test]
    fn fused_act_quant_is_bit_exact_with_prequantized_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[3, 4, 7, 7], &mut rng).mul_scalar(1.7);
        let w = Tensor::randn(&[6, 4, 3, 3], &mut rng);
        let b = Tensor::randn(&[6], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        for wfmt in [FpFormat::new(4, 3), FpFormat::new(2, 1)] {
            let packed = PackedFpTensor::encode(&w, wfmt);
            for act in [
                TensorQuantizer::Fp(FpFormat::new(4, 3)),
                TensorQuantizer::Fp(FpFormat::new(2, 1)),
                TensorQuantizer::Int(IntFormat::fit(&x, 8)),
                TensorQuantizer::Int(IntFormat::fit(&x, 4)),
            ] {
                let fused = conv2d_packed_fp(&x, &packed, Some(&b), spec, Some(&act));
                let reference = reference_wa(&x, &packed, Some(&b), spec, &act);
                for (i, (a, e)) in fused.data().iter().zip(reference.data()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        e.to_bits(),
                        "{wfmt}/{act} elem {i}: {a} vs {e} not bit-exact"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_handles_nan_and_inf_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut vals: Vec<f32> = Tensor::randn(&[2 * 3 * 5 * 5], &mut rng).data().to_vec();
        vals[7] = f32::NAN;
        vals[31] = f32::INFINITY;
        vals[99] = f32::NEG_INFINITY;
        let x = Tensor::from_vec(vals, &[2, 3, 5, 5]);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        for act in [
            TensorQuantizer::Fp(FpFormat::new(2, 1)),
            TensorQuantizer::Int(IntFormat::from_range(8, -2.0, 2.0)),
        ] {
            let fused = conv2d_packed_fp(&x, &packed, None, spec, Some(&act));
            let reference = reference_wa(&x, &packed, None, spec, &act);
            assert!(fused.data().iter().all(|v| v.is_finite()), "{act}: non-finite output");
            for (a, e) in fused.data().iter().zip(reference.data()) {
                assert_eq!(a.to_bits(), e.to_bits(), "{act}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn per_channel_fused_matches_planewise_prequantization() {
        let mut rng = StdRng::seed_from_u64(6);
        let (c, h, w_) = (3usize, 5usize, 5usize);
        let x = Tensor::randn(&[2, c, h, w_], &mut rng);
        let w = Tensor::randn(&[4, c, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(1, 1);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        let formats: Vec<TensorQuantizer> = (0..c)
            .map(|ci| TensorQuantizer::Fp(FpFormat::with_bias(4, 3, 7.0 + ci as f32)))
            .collect();
        let pq = PanelQuantizer::per_channel(&formats);
        let fused = conv2d_packed_fused(&x, &packed, None, spec, Some(&pq));
        // Reference: quantize each input-channel plane with its format.
        let mut xq = x.clone();
        for b in 0..2 {
            for (ci, fmt) in formats.iter().enumerate() {
                let start = (b * c + ci) * h * w_;
                let plane = Tensor::from_vec(x.data()[start..start + h * w_].to_vec(), &[h * w_]);
                let qplane = fmt.quantize(&plane);
                xq.data_mut()[start..start + h * w_].copy_from_slice(qplane.data());
            }
        }
        let reference = conv2d_packed_fused(&xq, &packed, None, spec, None);
        for (i, (a, e)) in fused.data().iter().zip(reference.data()).enumerate() {
            assert_eq!(a.to_bits(), e.to_bits(), "elem {i}: {a} vs {e}");
        }
    }

    #[test]
    fn regimes_are_bit_identical_at_worker_count_boundaries() {
        // n around the worker count is exactly where the old `n < workers`
        // heuristic flipped schedules; sweep batch sizes across the
        // boundary (and worker counts across regimes) and require
        // identical bits everywhere, including batch-N slice i ==
        // the batch-1 run on image i.
        use crate::schedule::{pick_conv_regime, ConvRegime};
        use fpdq_tensor::simd;
        let mut rng = StdRng::seed_from_u64(31);
        let (c, o, hw) = (3usize, 8usize, 5usize);
        let spec = Conv2dSpec::new(1, 1);
        let w = Tensor::randn(&[o, c, 3, 3], &mut rng);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let pq = PanelQuantizer::per_tensor(&act);
        // Both regimes must actually occur in this sweep.
        let workers_swept = [1usize, 2, 4, 8];
        let batches = [1usize, 3, 4, 5, 8];
        let mut seen = std::collections::HashSet::new();
        for &n in &batches {
            let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
            let singles: Vec<Tensor> = (0..n)
                .map(|i| {
                    let img = Tensor::from_vec(
                        x.data()[i * c * hw * hw..(i + 1) * c * hw * hw].to_vec(),
                        &[1, c, hw, hw],
                    );
                    conv2d_packed_fused_in(&img, &packed, None, spec, Some(&pq), simd::active(), 1)
                })
                .collect();
            for &workers in &workers_swept {
                seen.insert(pick_conv_regime(n, o, workers));
                let full = conv2d_packed_fused_in(
                    &x,
                    &packed,
                    None,
                    spec,
                    Some(&pq),
                    simd::active(),
                    workers,
                );
                let plane = full.numel() / n;
                for (i, single) in singles.iter().enumerate() {
                    for (j, (a, e)) in full.data()[i * plane..(i + 1) * plane]
                        .iter()
                        .zip(single.data())
                        .enumerate()
                    {
                        assert_eq!(
                            a.to_bits(),
                            e.to_bits(),
                            "n {n} workers {workers} img {i} elem {j}: {a} vs {e}"
                        );
                    }
                }
            }
        }
        assert!(seen.contains(&ConvRegime::BatchParallel), "sweep never hit batch-parallel");
        assert!(seen.contains(&ConvRegime::ChannelParallel), "sweep never hit channel-parallel");
    }

    #[test]
    fn degenerate_conv_shapes_are_panic_free() {
        let fmt = FpFormat::new(4, 3);
        // Zero batch.
        let w = PackedFpTensor::encode(&Tensor::zeros(&[2, 3, 3, 3]), fmt);
        let y =
            conv2d_packed_fp(&Tensor::zeros(&[0, 3, 5, 5]), &w, None, Conv2dSpec::new(1, 1), None);
        assert_eq!(y.dims(), &[0, 2, 5, 5]);
        // Zero input channels: an empty reduction, all-zero output.
        let w2 = PackedFpTensor::encode(&Tensor::zeros(&[2, 0, 3, 3]), fmt);
        let y2 =
            conv2d_packed_fp(&Tensor::zeros(&[1, 0, 5, 5]), &w2, None, Conv2dSpec::new(1, 1), None);
        assert_eq!(y2.dims(), &[1, 2, 5, 5]);
        assert!(y2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = PackedFpTensor::encode(&Tensor::zeros(&[2, 2, 3, 3]), FpFormat::new(4, 3));
        conv2d_packed_fp(&x, &w, None, Conv2dSpec::new(1, 1), None);
    }
}
