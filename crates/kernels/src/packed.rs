//! Bit-packed tensors for low-bitwidth formats.
//!
//! Values are stored as codes of `total_bits` each, densely packed into
//! bytes. FP codes index the format's enumerable value table (sign ×
//! magnitude grid); INT codes are the affine levels of eq. (4). Decode is
//! bit-exact against the simulated quantizers in `fpdq-core` — the
//! property that makes the fake-quantized evaluation trustworthy.
//!
//! # Fast paths
//!
//! The hot kernels never touch bits one at a time:
//!
//! * **Encode** goes through a precomputed *boundary table* (one decision
//!   threshold per adjacent pair of representable magnitudes, found by
//!   exact bit-level bisection against [`FpFormat::quantize_scalar`] +
//!   nearest-index), replacing the per-element `log2`/`powf` quantization
//!   plus binary search of the original implementation while staying
//!   bit-identical to it.
//! * **Decode** for formats whose width divides a byte (FP4/INT4 → 2
//!   codes/byte, FP8/INT8 → 1) goes through a 256-entry *per-byte LUT*
//!   holding the already-signed `f32` values, so expanding a packed row is
//!   one table load per element.
//! * **`pack_bits` / `unpack_bits_range`** use whole-byte copies for 8/16
//!   bit codes, nibble splits for 4-bit codes, and a word-level
//!   shift-accumulator otherwise. The original per-bit loops survive as
//!   [`pack_bits_bitloop`] / [`unpack_bits_range_bitloop`] — the reference
//!   implementations the property tests and benchmarks compare against.
//!
//! Row kernels use the allocation-free `decode_row_into`-style APIs
//! ([`PackedFpTensor::decode_range_into`]) to stream packed weights into
//! caller-owned scratch.

use bytes::{BufMut, Bytes, BytesMut};
use fpdq_core::{FpFormat, IntFormat};
use fpdq_tensor::simd::{self, Isa};
use fpdq_tensor::{FpdqError, Tensor};

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

/// Packs `codes` (each below `2^bits`) densely into bytes, little-endian
/// bit order.
pub fn pack_bits(codes: &[u16], bits: u32) -> Vec<u8> {
    assert!((1..=16).contains(&bits), "bits out of range");
    let total_bits = codes.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    match bits {
        8 => {
            for (slot, &code) in out.iter_mut().zip(codes) {
                debug_assert!(code < 1 << 8, "code {code} exceeds 8 bits");
                *slot = code as u8;
            }
        }
        16 => {
            for (slot, &code) in out.chunks_exact_mut(2).zip(codes) {
                slot.copy_from_slice(&code.to_le_bytes());
            }
        }
        4 => {
            for (slot, pair) in out.iter_mut().zip(codes.chunks(2)) {
                debug_assert!(pair.iter().all(|&c| c < 16), "code exceeds 4 bits");
                *slot = pair[0] as u8 | (pair.get(1).copied().unwrap_or(0) as u8) << 4;
            }
        }
        _ => {
            // Word-level accumulator: shift each code into a 64-bit window
            // and drain whole bytes (≤ 23 live bits at any point).
            let mut acc = 0u64;
            let mut acc_bits = 0u32;
            let mut byte = 0usize;
            for &code in codes {
                debug_assert!(u32::from(code) < (1u32 << bits), "code {code} exceeds {bits} bits");
                acc |= u64::from(code) << acc_bits;
                acc_bits += bits;
                while acc_bits >= 8 {
                    out[byte] = acc as u8;
                    byte += 1;
                    acc >>= 8;
                    acc_bits -= 8;
                }
            }
            if acc_bits > 0 {
                out[byte] = acc as u8;
            }
        }
    }
    out
}

/// Reference bit-at-a-time implementation of [`pack_bits`], kept for
/// property tests and the `pack` benchmark's before/after comparison.
pub fn pack_bits_bitloop(codes: &[u16], bits: u32) -> Vec<u8> {
    assert!((1..=16).contains(&bits), "bits out of range");
    let total_bits = codes.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    for (i, &code) in codes.iter().enumerate() {
        let bit0 = i * bits as usize;
        for b in 0..bits as usize {
            if code >> b & 1 == 1 {
                out[(bit0 + b) / 8] |= 1 << ((bit0 + b) % 8);
            }
        }
    }
    out
}

/// Inverse of [`pack_bits`].
pub fn unpack_bits(bytes: &[u8], bits: u32, count: usize) -> Vec<u16> {
    unpack_bits_range(bytes, bits, 0, count)
}

/// Unpacks `count` codes starting at element index `start` — lets row
/// kernels stream one packed row without touching the rest of the
/// payload.
pub fn unpack_bits_range(bytes: &[u8], bits: u32, start: usize, count: usize) -> Vec<u16> {
    let mut out = vec![0u16; count];
    unpack_bits_range_into(bytes, bits, start, &mut out);
    out
}

/// Allocation-free core of [`unpack_bits_range`]: unpacks `out.len()`
/// codes starting at element index `start` into caller scratch.
pub fn unpack_bits_range_into(bytes: &[u8], bits: u32, start: usize, out: &mut [u16]) {
    assert!((1..=16).contains(&bits), "bits out of range");
    match bits {
        8 => {
            let end = start + out.len();
            for (slot, &b) in out.iter_mut().zip(&bytes[start..end]) {
                *slot = u16::from(b);
            }
        }
        16 => {
            for (slot, b) in out.iter_mut().zip(bytes[start * 2..].chunks_exact(2)) {
                *slot = u16::from_le_bytes([b[0], b[1]]);
            }
        }
        4 => nibble_walk(bytes, start, out, |b, parity| {
            u16::from(if parity == 0 { b & 0xF } else { b >> 4 })
        }),
        _ => {
            let mask = (1u32 << bits) - 1;
            let mut bitpos = start * bits as usize;
            for slot in out.iter_mut() {
                let byte0 = bitpos / 8;
                let shift = (bitpos % 8) as u32;
                // ≤ 7 + 16 = 23 bits needed: at most 3 bytes.
                let mut w = 0u32;
                for (k, &b) in
                    bytes[byte0..].iter().take(((shift + bits) as usize).div_ceil(8)).enumerate()
                {
                    w |= u32::from(b) << (8 * k as u32);
                }
                *slot = ((w >> shift) & mask) as u16;
                bitpos += bits as usize;
            }
        }
    }
}

/// Walks the 2-codes-per-byte nibble stream over elements
/// `[start, start + out.len())`, writing `emit(byte, parity)` per element
/// (parity 0 = low nibble, 1 = high). Handles mid-byte entry/exit and
/// empty ranges; shared by the 4-bit unpack and the nibble-LUT decode so
/// the alignment logic exists exactly once.
fn nibble_walk<T>(bytes: &[u8], start: usize, out: &mut [T], emit: impl Fn(u8, usize) -> T) {
    if out.is_empty() {
        return;
    }
    let last = start + out.len() - 1;
    let mut idx = start;
    let mut rem = &mut out[..];
    if idx % 2 == 1 {
        rem[0] = emit(bytes[idx / 2], 1);
        rem = &mut rem[1..];
        idx += 1;
    }
    let mut pairs = rem.chunks_exact_mut(2);
    for (pair, &b) in (&mut pairs).zip(&bytes[idx / 2..]) {
        pair[0] = emit(b, 0);
        pair[1] = emit(b, 1);
    }
    if let [slot] = pairs.into_remainder() {
        // A trailing low nibble (the range ends mid-byte).
        *slot = emit(bytes[last / 2], last % 2);
    }
}

/// Reference bit-at-a-time implementation of [`unpack_bits_range`], kept
/// for property tests and the `pack` benchmark's before/after comparison.
pub fn unpack_bits_range_bitloop(bytes: &[u8], bits: u32, start: usize, count: usize) -> Vec<u16> {
    let mut out = Vec::with_capacity(count);
    for i in start..start + count {
        let bit0 = i * bits as usize;
        let mut code = 0u16;
        for b in 0..bits as usize {
            if bytes[(bit0 + b) / 8] >> ((bit0 + b) % 8) & 1 == 1 {
                code |= 1 << b;
            }
        }
        out.push(code);
    }
    out
}

// ---------------------------------------------------------------------------
// Shared decode surface
// ---------------------------------------------------------------------------

/// Common decode surface of packed tensors, letting the GEMM/conv kernels
/// stream FP and INT weights through one implementation.
pub trait PackedWeights: Sync {
    /// Logical shape.
    fn dims(&self) -> &[usize];
    /// Decodes elements `[start, start + out.len())` into caller scratch
    /// through the active SIMD dispatch ([`fpdq_tensor::simd::active`]).
    fn decode_range_into(&self, start: usize, out: &mut [f32]) {
        self.decode_range_into_as(simd::active(), start, out);
    }
    /// [`Self::decode_range_into`] on an explicit ISA path — the dispatch
    /// point the differential SIMD tests drive from both sides. Every ISA
    /// reads the same LUT values, so outputs are bit-identical; an
    /// unsupported `isa` falls back to the scalar walk.
    fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]);
}

/// Builds the 256-entry per-byte decode LUT for a `bits`-wide code space
/// (`bits` ∈ {4, 8}), given the signed value of each code.
fn build_byte_lut(bits: u32, decode: impl Fn(u16) -> f32) -> Vec<f32> {
    match bits {
        8 => (0u16..256).map(decode).collect(),
        4 => (0u16..256).flat_map(|byte| [decode(byte & 0xF), decode(byte >> 4)]).collect(),
        _ => Vec::new(),
    }
}

/// Decodes elements `[start, start + out.len())` of a packed payload via
/// the per-byte LUT (`codes_per_byte` ∈ {1, 2}), on an explicit ISA path.
///
/// The AVX2 variants load the *same* table entries as the scalar walk —
/// byte codes through a 32-byte `vgatherdps` over the 256-entry LUT,
/// nibble codes through an in-register 16-entry `vpermps` lookup — so
/// every path is bit-identical by construction. Other ISAs (including
/// NEON, where the table lookups have no profitable gather equivalent at
/// these widths) run the scalar walk.
fn lut_decode_range(
    isa: Isa,
    lut: &[f32],
    codes_per_byte: usize,
    bytes: &[u8],
    start: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 && isa.is_supported() {
        // Real asserts, not debug: the AVX2 kernels read through raw
        // pointers, so the range invariants must hold in release builds
        // too — where the scalar walk would panic on a bad slice index,
        // an unchecked gather would be out-of-bounds UB.
        let end_byte =
            if codes_per_byte == 2 { (start + out.len()).div_ceil(2) } else { start + out.len() };
        assert!(end_byte <= bytes.len(), "decode range past payload end");
        assert!(lut.len() >= 256 * codes_per_byte, "byte LUT too short");
        // Safety: AVX2 verified at runtime; the byte ranges the kernels
        // touch are exactly those of the scalar walk below, asserted in
        // bounds above.
        unsafe {
            match codes_per_byte {
                1 => avx2::lut_decode_bytes(lut, bytes, start, out),
                2 => avx2::lut_decode_nibbles(lut, bytes, start, out),
                _ => unreachable!("codes_per_byte must be 1 or 2"),
            }
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    match codes_per_byte {
        1 => {
            let end = start + out.len();
            for (slot, &b) in out.iter_mut().zip(&bytes[start..end]) {
                *slot = lut[b as usize];
            }
        }
        2 => nibble_walk(bytes, start, out, |b, parity| lut[b as usize * 2 + parity]),
        _ => unreachable!("codes_per_byte must be 1 or 2"),
    }
}

/// AVX2 LUT decode: 8 elements per step for byte codes (zero-extend +
/// gather), 16 per step for nibble codes (split nibbles, two in-register
/// 16-entry table lookups, interleave). See [`lut_decode_range`] for the
/// bit-identity argument.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// Byte-code decode: `out[i] = lut[bytes[start + i]]`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 at runtime; `lut` must cover every byte value (256
    /// entries) and `bytes[start..start + out.len()]` must be in bounds.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_decode_bytes(
        lut: &[f32],
        bytes: &[u8],
        start: usize,
        out: &mut [f32],
    ) {
        debug_assert!(lut.len() >= 256);
        debug_assert!(start + out.len() <= bytes.len());
        let src = bytes.as_ptr().add(start);
        let n = out.len();
        let mut i = 0;
        while i + 8 <= n {
            let raw = _mm_loadl_epi64(src.add(i) as *const __m128i);
            let idx = _mm256_cvtepu8_epi32(raw);
            let v = _mm256_i32gather_ps::<4>(lut.as_ptr(), idx);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
            i += 8;
        }
        for slot in i..n {
            out[slot] = lut[*src.add(slot) as usize];
        }
    }

    /// Nibble-code decode over the per-byte LUT layout
    /// (`lut[byte * 2 + parity]`): element index `start + i` is nibble
    /// `(start + i) % 2` of byte `(start + i) / 2`. Mirrors
    /// [`super::nibble_walk`]'s mid-byte entry/exit handling; the aligned
    /// body decodes 8 bytes → 16 values per step.
    ///
    /// # Safety
    ///
    /// Requires AVX2 at runtime; `lut` must hold 512 entries and the
    /// nibble range must be in bounds of `bytes`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_decode_nibbles(
        lut: &[f32],
        bytes: &[u8],
        start: usize,
        out: &mut [f32],
    ) {
        debug_assert!(lut.len() >= 512);
        if out.is_empty() {
            return;
        }
        debug_assert!((start + out.len()).div_ceil(2) <= bytes.len());
        let mut idx = start;
        let mut o = 0usize;
        if idx % 2 == 1 {
            // Mid-byte entry: the first element is a high nibble.
            out[0] = lut[bytes[idx / 2] as usize * 2 + 1];
            o = 1;
            idx += 1;
        }
        let pairs = (out.len() - o) / 2;
        // The 16-entry nibble value table, in two 8-lane registers: byte
        // `t < 16` has low nibble `t`, so `lut[2 t]` enumerates it.
        let mut nib = [0.0f32; 16];
        for (t, slot) in nib.iter_mut().enumerate() {
            *slot = lut[t * 2];
        }
        let lo_tbl = _mm256_loadu_ps(nib.as_ptr());
        let hi_tbl = _mm256_loadu_ps(nib.as_ptr().add(8));
        let byte0 = idx / 2;
        let mut p = 0usize;
        while p + 8 <= pairs {
            let raw = _mm_loadl_epi64(bytes.as_ptr().add(byte0 + p) as *const __m128i);
            let lo_n = _mm_and_si128(raw, _mm_set1_epi8(0x0F));
            let hi_n = _mm_and_si128(_mm_srli_epi16::<4>(raw), _mm_set1_epi8(0x0F));
            let lov = nib_lookup(lo_tbl, hi_tbl, _mm256_cvtepu8_epi32(lo_n));
            let hiv = nib_lookup(lo_tbl, hi_tbl, _mm256_cvtepu8_epi32(hi_n));
            // Interleave low/high nibble values back into element order.
            let t0 = _mm256_unpacklo_ps(lov, hiv);
            let t1 = _mm256_unpackhi_ps(lov, hiv);
            let dst = out.as_mut_ptr().add(o + 2 * p);
            _mm256_storeu_ps(dst, _mm256_permute2f128_ps::<0x20>(t0, t1));
            _mm256_storeu_ps(dst.add(8), _mm256_permute2f128_ps::<0x31>(t0, t1));
            p += 8;
        }
        for q in p..pairs {
            let b = bytes[byte0 + q] as usize;
            out[o + 2 * q] = lut[b * 2];
            out[o + 2 * q + 1] = lut[b * 2 + 1];
        }
        if (out.len() - o) % 2 == 1 {
            // Mid-byte exit: the last element is a low nibble.
            let last = out.len() - 1;
            out[last] = lut[bytes[(start + last) / 2] as usize * 2];
        }
    }

    /// 16-entry `f32` table lookup of 8 indices: `vpermps` through both
    /// table halves, selected on index bit 3.
    ///
    /// # Safety
    ///
    /// Requires AVX2; every lane of `idx` must be in `0..16`.
    #[target_feature(enable = "avx2")]
    unsafe fn nib_lookup(lo_tbl: __m256, hi_tbl: __m256, idx: __m256i) -> __m256 {
        let pl = _mm256_permutevar8x32_ps(lo_tbl, idx);
        let ph = _mm256_permutevar8x32_ps(hi_tbl, idx);
        let take_hi = _mm256_castsi256_ps(_mm256_cmpgt_epi32(idx, _mm256_set1_epi32(7)));
        _mm256_blendv_ps(pl, ph, take_hi)
    }
}

/// Generic (any-bitwidth) decode of elements `[start, start + out.len())`
/// through a per-code decoder, using a fixed stack scratch so row decodes
/// stay allocation-free.
fn generic_decode_range(
    bytes: &[u8],
    bits: u32,
    start: usize,
    out: &mut [f32],
    decode: impl Fn(u16) -> f32,
) {
    let mut scratch = [0u16; 128];
    let mut offset = 0usize;
    while offset < out.len() {
        let n = scratch.len().min(out.len() - offset);
        unpack_bits_range_into(bytes, bits, start + offset, &mut scratch[..n]);
        for (slot, &code) in out[offset..offset + n].iter_mut().zip(&scratch[..n]) {
            *slot = decode(code);
        }
        offset += n;
    }
}

// ---------------------------------------------------------------------------
// Floating point
// ---------------------------------------------------------------------------

/// Precomputed encoder for one FP format: the decision threshold between
/// every adjacent pair of representable magnitudes, refined to the exact
/// float against [`FpFormat::quantize_scalar`] so `encode_scalar` is
/// bit-identical to "quantize, then find the index" — without the
/// per-element `log2`/`powf`.
#[derive(Clone, Debug)]
pub struct FpEncoder {
    /// `boundaries[i]` is the smallest positive `f32` whose quantized
    /// magnitude is `table[i + 1]`.
    boundaries: Vec<f32>,
    sign_shift: u32,
}

impl FpEncoder {
    /// Builds the boundary table for `format` (`table` must be the
    /// format's non-negative value enumeration).
    ///
    /// Each boundary is found by bisection over `f32` bit patterns against
    /// the reference pipeline "quantize, then nearest table index", which
    /// is monotone in `|x|`. The thresholds are therefore *exact*: the
    /// fast encoder reproduces the reference for every input, including
    /// searched fractional biases whose clip maximum `c` is not itself a
    /// table entry (there the top code may be unreachable and the boundary
    /// becomes `+∞`).
    pub fn new(format: FpFormat, table: &[f32]) -> Self {
        let sign_shift = format.exp_bits() + format.man_bits();
        let index_of = |x: f32| nearest_index(table, format.quantize_scalar(x).abs());
        let top = index_of(f32::MAX);
        let mut boundaries = Vec::with_capacity(table.len().saturating_sub(1));
        for i in 0..table.len().saturating_sub(1) {
            if top <= i {
                // Even the largest input never reaches magnitude i+1.
                boundaries.push(f32::INFINITY);
                continue;
            }
            // Smallest positive float whose index exceeds i: bisect on bit
            // patterns (non-negative floats order like their bits).
            let mut lb = 0u32; // index_of(0) == 0 <= i
            let mut ub = f32::MAX.to_bits();
            while ub - lb > 1 {
                let mid = lb + (ub - lb) / 2;
                if index_of(f32::from_bits(mid)) > i {
                    ub = mid;
                } else {
                    lb = mid;
                }
            }
            boundaries.push(f32::from_bits(ub));
        }
        FpEncoder { boundaries, sign_shift }
    }

    /// Encodes one value to its packed code. Bit-identical to quantizing
    /// with the format and locating the result in the value table; NaN
    /// deterministically maps to code 0 (positive zero) and ±∞ clip to
    /// the largest magnitude, matching [`FpFormat::quantize_scalar`].
    #[inline]
    pub fn encode_scalar(&self, v: f32) -> u16 {
        if v.is_nan() {
            return 0;
        }
        // ∞ behaves like the largest finite value (clipping), keeping the
        // `+∞` sentinel boundaries of unreachable top codes inert.
        let a = v.abs().min(f32::MAX);
        // partition_point: number of boundaries ≤ a == magnitude index.
        let mag = self.boundaries.partition_point(|&b| b <= a) as u16;
        if v.is_sign_negative() && mag != 0 {
            (1 << self.sign_shift) | mag
        } else {
            mag
        }
    }
}

/// Index of the table value nearest to `v` (ties toward the lower index)
/// — the reference encode's second stage, and the oracle the boundary
/// bisection in [`FpEncoder::new`] matches exactly.
fn nearest_index(sorted: &[f32], v: f32) -> usize {
    match sorted.binary_search_by(|x| x.total_cmp(&v)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= sorted.len() {
                sorted.len() - 1
            } else if (v - sorted[i - 1]).abs() <= (sorted[i] - v).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

/// A tensor stored in a packed ExMy floating-point format.
#[derive(Clone, Debug)]
pub struct PackedFpTensor {
    format: FpFormat,
    dims: Vec<usize>,
    /// Packed codes as a refcounted [`Bytes`] view — [`Self::encode`]
    /// owns a fresh buffer, [`Self::from_parts`] borrows a window of a
    /// shared container mapping (zero copy, zero decode).
    bytes: Bytes,
    /// Non-negative value table indexed by magnitude code.
    table: Vec<f32>,
    /// Per-byte signed decode LUT (empty unless `total_bits` ∈ {4, 8}).
    byte_lut: Vec<f32>,
}

impl PackedFpTensor {
    /// Quantizes and packs a tensor.
    pub fn encode(x: &Tensor, format: FpFormat) -> Self {
        let table = format.enumerate_non_negative();
        let encoder = FpEncoder::new(format, &table);
        let codes: Vec<u16> = x.data().iter().map(|&v| encoder.encode_scalar(v)).collect();
        let payload: Bytes = pack_bits(&codes, format.total_bits()).into();
        // Route through `from_parts` so encode-then-store and
        // load-from-container build their tables through the exact same
        // code path (bit-identity by construction).
        Self::from_parts(format, x.dims().to_vec(), payload)
            .expect("encode produces an exact-length payload")
    }

    /// Rebuilds a packed tensor around an existing payload (a zero-copy
    /// window of a container mapping) — the value table and decode LUT
    /// are regenerated deterministically from `format`, so decodes are
    /// bit-identical to the [`Self::encode`] that produced the payload.
    ///
    /// Returns a typed error if the payload length does not match
    /// `dims`/`format` exactly; payload *content* needs no validation
    /// (every code decodes to some table value).
    pub fn from_parts(
        format: FpFormat,
        dims: Vec<usize>,
        payload: Bytes,
    ) -> Result<Self, FpdqError> {
        let numel: usize = dims.iter().product();
        let want = (numel * format.total_bits() as usize).div_ceil(8);
        if payload.len() != want {
            return Err(FpdqError::corrupt(format!(
                "fp payload length {} != expected {want} for dims {dims:?} at {}",
                payload.len(),
                format.name()
            )));
        }
        let table = format.enumerate_non_negative();
        let mag_bits = format.exp_bits() + format.man_bits();
        let byte_lut = build_byte_lut(format.total_bits(), |code| {
            let v = table[(code & ((1 << mag_bits) - 1)) as usize];
            if code >> mag_bits & 1 == 1 {
                -v
            } else {
                v
            }
        });
        Ok(PackedFpTensor { format, dims, bytes: payload, table, byte_lut })
    }

    /// The packed payload (zero-copy clone of the backing view).
    pub fn payload(&self) -> Bytes {
        self.bytes.clone()
    }

    /// The storage format.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Logical shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Packed payload size in bytes (the §III footprint claim: FP8 = 1/4,
    /// FP4 = 1/8 of FP32).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes one element by flat index.
    pub fn get(&self, i: usize) -> f32 {
        let mut out = [0.0f32];
        self.decode_range_into(i, &mut out);
        out[0]
    }

    /// Decodes one packed code to its signed value.
    pub fn decode_code(&self, code: u16) -> f32 {
        let mag_bits = self.format.exp_bits() + self.format.man_bits();
        let mag = (code & ((1 << mag_bits) - 1)) as usize;
        let sign = code >> mag_bits & 1;
        let v = self.table[mag];
        if sign == 1 {
            -v
        } else {
            v
        }
    }

    /// Decodes the whole tensor.
    pub fn decode(&self) -> Tensor {
        let mut data = vec![0.0f32; self.numel()];
        self.decode_range_into(0, &mut data);
        Tensor::from_vec(data, &self.dims)
    }

    /// Reference decode through the bit-loop unpack path (no LUT), kept
    /// for the property tests and the decode benchmark's before/after
    /// comparison.
    pub fn decode_via_bitloop(&self) -> Tensor {
        let codes =
            unpack_bits_range_bitloop(&self.bytes, self.format.total_bits(), 0, self.numel());
        let data = codes.iter().map(|&c| self.decode_code(c)).collect();
        Tensor::from_vec(data, &self.dims)
    }

    /// Decodes one leading-axis slice (`[dims[0], rest]` row) into `out`,
    /// unpacking only that row's packed range. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the row length.
    pub fn decode_row(&self, row: usize, out: &mut [f32]) {
        assert!(!self.dims.is_empty(), "decode_row needs at least one axis");
        let cols = self.numel() / self.dims[0];
        assert_eq!(out.len(), cols, "row buffer size");
        self.decode_range_into(row * cols, out);
    }

    /// Serialises format + dims + payload (for weight files).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.format.exp_bits());
        buf.put_u32_le(self.format.man_bits());
        buf.put_f32_le(self.format.bias());
        buf.put_u32_le(self.dims.len() as u32);
        for &d in &self.dims {
            buf.put_u64_le(d as u64);
        }
        buf.put_slice(&self.bytes);
        buf.to_vec()
    }
}

impl PackedWeights for PackedFpTensor {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        debug_assert!(start + out.len() <= self.numel(), "decode range out of bounds");
        if self.byte_lut.is_empty() {
            generic_decode_range(&self.bytes, self.format.total_bits(), start, out, |c| {
                self.decode_code(c)
            });
        } else {
            let cpb = if self.format.total_bits() == 4 { 2 } else { 1 };
            lut_decode_range(isa, &self.byte_lut, cpb, &self.bytes, start, out);
        }
    }
}

impl PackedFpTensor {
    /// Decodes elements `[start, start + out.len())` into caller scratch
    /// (inherent forwarding of [`PackedWeights::decode_range_into`] so
    /// callers need no trait import).
    pub fn decode_range_into(&self, start: usize, out: &mut [f32]) {
        <Self as PackedWeights>::decode_range_into(self, start, out);
    }

    /// [`Self::decode_range_into`] on an explicit ISA path (inherent
    /// forwarding of [`PackedWeights::decode_range_into_as`]).
    pub fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        <Self as PackedWeights>::decode_range_into_as(self, isa, start, out);
    }
}

// ---------------------------------------------------------------------------
// Integer
// ---------------------------------------------------------------------------

/// A tensor stored as packed affine-integer levels.
#[derive(Clone, Debug)]
pub struct PackedIntTensor {
    format: IntFormat,
    dims: Vec<usize>,
    /// Packed levels as a refcounted [`Bytes`] view (see
    /// [`PackedFpTensor::from_parts`] for the sharing story).
    bytes: Bytes,
    /// Per-byte decode LUT (empty unless `bits` ∈ {4, 8}).
    byte_lut: Vec<f32>,
}

impl PackedIntTensor {
    /// Quantizes and packs a tensor.
    ///
    /// NaN inputs deterministically map to the zero-point level (the
    /// level [`IntFormat::quantize_scalar`] assigns NaN), ±∞ clip to the
    /// extreme levels.
    pub fn encode(x: &Tensor, format: IntFormat) -> Self {
        let qmax = (1u32 << format.bits()) as f32 - 1.0;
        let zp = format.zero_point();
        let nan_level = zp.clamp(0.0, qmax) as u16;
        let codes: Vec<u16> = x
            .data()
            .iter()
            .map(|&v| {
                if v.is_nan() {
                    nan_level
                } else {
                    ((v / format.scale()).round() + zp).clamp(0.0, qmax) as u16
                }
            })
            .collect();
        let payload: Bytes = pack_bits(&codes, format.bits()).into();
        Self::from_parts(format, x.dims().to_vec(), payload)
            .expect("encode produces an exact-length payload")
    }

    /// Rebuilds a packed tensor around an existing payload (see
    /// [`PackedFpTensor::from_parts`]); the decode LUT is regenerated
    /// deterministically from `format`.
    pub fn from_parts(
        format: IntFormat,
        dims: Vec<usize>,
        payload: Bytes,
    ) -> Result<Self, FpdqError> {
        let numel: usize = dims.iter().product();
        let want = (numel * format.bits() as usize).div_ceil(8);
        if payload.len() != want {
            return Err(FpdqError::corrupt(format!(
                "int payload length {} != expected {want} for dims {dims:?} at INT{}",
                payload.len(),
                format.bits()
            )));
        }
        let zp = format.zero_point();
        let lut = build_byte_lut(format.bits(), |c| format.scale() * (f32::from(c) - zp));
        Ok(PackedIntTensor { format, dims, bytes: payload, byte_lut: lut })
    }

    /// The packed payload (zero-copy clone of the backing view).
    pub fn payload(&self) -> Bytes {
        self.bytes.clone()
    }

    /// The storage format.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Logical shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Packed payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes the whole tensor.
    pub fn decode(&self) -> Tensor {
        let mut data = vec![0.0f32; self.numel()];
        self.decode_range_into(0, &mut data);
        Tensor::from_vec(data, &self.dims)
    }

    /// Decodes one leading-axis slice into `out`. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the row length.
    pub fn decode_row(&self, row: usize, out: &mut [f32]) {
        assert!(!self.dims.is_empty(), "decode_row needs at least one axis");
        let cols = self.numel() / self.dims[0];
        assert_eq!(out.len(), cols, "row buffer size");
        self.decode_range_into(row * cols, out);
    }
}

impl PackedWeights for PackedIntTensor {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        debug_assert!(start + out.len() <= self.numel(), "decode range out of bounds");
        if self.byte_lut.is_empty() {
            let (scale, zp) = (self.format.scale(), self.format.zero_point());
            generic_decode_range(&self.bytes, self.format.bits(), start, out, |c| {
                scale * (f32::from(c) - zp)
            });
        } else {
            let cpb = if self.format.bits() == 4 { 2 } else { 1 };
            lut_decode_range(isa, &self.byte_lut, cpb, &self.bytes, start, out);
        }
    }
}

impl PackedIntTensor {
    /// Decodes elements `[start, start + out.len())` into caller scratch
    /// (inherent forwarding of [`PackedWeights::decode_range_into`]).
    pub fn decode_range_into(&self, start: usize, out: &mut [f32]) {
        <Self as PackedWeights>::decode_range_into(self, start, out);
    }

    /// [`Self::decode_range_into`] on an explicit ISA path (inherent
    /// forwarding of [`PackedWeights::decode_range_into_as`]).
    pub fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        <Self as PackedWeights>::decode_range_into_as(self, isa, start, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn next_up_positive(x: f32) -> f32 {
        f32::from_bits(x.to_bits() + 1)
    }

    fn next_down_positive(x: f32) -> f32 {
        f32::from_bits(x.to_bits() - 1)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let codes: Vec<u16> = vec![0, 1, 7, 3, 5, 2, 6, 4, 7, 0, 1];
        for bits in [3u32, 4, 8] {
            let packed = pack_bits(&codes, bits);
            assert_eq!(unpack_bits(&packed, bits, codes.len()), codes, "bits={bits}");
        }
    }

    #[test]
    fn fp8_payload_is_quarter_of_fp32() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[64, 64], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(4, 3));
        assert_eq!(packed.payload_bytes(), 64 * 64); // 1 byte/elem vs 4
    }

    #[test]
    fn fp4_payload_is_eighth_of_fp32() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[64, 64], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(2, 1));
        assert_eq!(packed.payload_bytes(), 64 * 64 / 2); // 2 elems/byte
    }

    #[test]
    fn packed_fp_decode_is_bit_exact_with_simulated_quantizer() {
        // The packed representation must reproduce fpdq-core's simulated
        // quantization exactly — this is what licenses evaluating quality
        // with fake quantization.
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[33, 17], &mut rng).mul_scalar(3.0);
        for fmt in [
            FpFormat::new(4, 3),
            FpFormat::new(5, 2),
            FpFormat::new(2, 1),
            FpFormat::with_bias(3, 4, 6.5),
        ] {
            let packed = PackedFpTensor::encode(&x, fmt);
            let decoded = packed.decode();
            let simulated = fmt.quantize(&x);
            for (i, (a, b)) in decoded.data().iter().zip(simulated.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.abs().to_bits() | (a.to_bits() & 0x8000_0000),
                    "mismatch at {i} for {fmt}: packed {a} vs simulated {b}"
                );
                assert!((a - b).abs() == 0.0, "{fmt}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn boundary_encode_is_bit_exact_on_adversarial_values() {
        // Stress the boundary table exactly where it can go wrong: on and
        // one ULP around every representable value and every midpoint,
        // for standard and fractional biases.
        for fmt in [
            FpFormat::new(4, 3),
            FpFormat::new(5, 2),
            FpFormat::new(2, 1),
            FpFormat::new(1, 2),
            FpFormat::new(3, 4),
            FpFormat::with_bias(3, 4, 6.5),
            FpFormat::with_bias(4, 3, 8.37),
            FpFormat::with_bias(2, 1, 1.25),
        ] {
            let table = fmt.enumerate_non_negative();
            let mut probes = Vec::new();
            for pair in table.windows(2) {
                let mid = ((f64::from(pair[0]) + f64::from(pair[1])) * 0.5) as f32;
                for v in [pair[0], pair[1], mid] {
                    probes.extend([v, next_up_positive(v)]);
                    if v > 0.0 {
                        probes.push(next_down_positive(v));
                    }
                }
            }
            probes.extend([0.0, f32::INFINITY, f32::NEG_INFINITY, table[table.len() - 1] * 2.0]);
            let signed: Vec<f32> = probes.iter().flat_map(|&v| [v, -v]).collect();
            let x = Tensor::from_vec(signed.clone(), &[signed.len()]);
            let decoded = PackedFpTensor::encode(&x, fmt).decode();
            let simulated = fmt.quantize(&x);
            for (i, (a, b)) in decoded.data().iter().zip(simulated.data()).enumerate() {
                assert!(
                    (a - b).abs() == 0.0,
                    "{fmt}: probe {} -> packed {a} vs simulated {b}",
                    signed[i]
                );
            }
        }
    }

    #[test]
    fn non_finite_inputs_encode_deterministically() {
        // Regression: NaN must map to code 0 (positive zero) and ±∞ to the
        // clipping maxima, for both FP and INT packing.
        let x = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.5], &[5]);
        for fmt in [FpFormat::new(4, 3), FpFormat::new(2, 1), FpFormat::with_bias(3, 4, 6.5)] {
            let packed = PackedFpTensor::encode(&x, fmt);
            let d = packed.decode();
            assert_eq!(d.data()[0].to_bits(), 0.0f32.to_bits(), "{fmt}: NaN -> +0");
            assert_eq!(d.data()[1], fmt.max_value(), "{fmt}: +inf clips");
            assert_eq!(d.data()[2], -fmt.max_value(), "{fmt}: -inf clips");
        }
        for bits in [4u32, 8] {
            let fmt = IntFormat::from_range(bits, -1.0, 1.0);
            let packed = PackedIntTensor::encode(&x, fmt);
            let d = packed.decode();
            let sim = fmt.quantize(&x);
            for (i, (a, b)) in d.data().iter().zip(sim.data()).enumerate() {
                assert!((a - b).abs() < 1e-6, "INT{bits} elem {i}: {a} vs {b}");
            }
            let (lo, hi) = fmt.range();
            assert_eq!(d.data()[1], hi, "INT{bits}: +inf clips to range max");
            assert_eq!(d.data()[2], lo, "INT{bits}: -inf clips to range min");
        }
    }

    #[test]
    fn packed_int_decode_matches_simulated_quantizer() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[40, 10], &mut rng);
        for bits in [4u32, 8] {
            let fmt = IntFormat::fit(&x, bits);
            let packed = PackedIntTensor::encode(&x, fmt);
            let decoded = packed.decode();
            let simulated = fmt.quantize(&x);
            for (a, b) in decoded.data().iter().zip(simulated.data()) {
                assert!((a - b).abs() < 1e-6, "INT{bits}: {a} vs {b}");
            }
            assert_eq!(packed.payload_bytes(), (400 * bits as usize).div_ceil(8));
        }
    }

    #[test]
    fn decode_row_matches_full_decode() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[5, 12], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(3, 4));
        let full = packed.decode();
        let mut row = vec![0.0f32; 12];
        packed.decode_row(3, &mut row);
        assert_eq!(&full.data()[36..48], &row[..]);
    }

    #[test]
    fn int_decode_row_matches_full_decode() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[7, 9], &mut rng);
        for bits in [3u32, 4, 8] {
            let packed = PackedIntTensor::encode(&x, IntFormat::fit(&x, bits));
            let full = packed.decode();
            let mut row = vec![0.0f32; 9];
            for r in 0..7 {
                packed.decode_row(r, &mut row);
                assert_eq!(&full.data()[r * 9..(r + 1) * 9], &row[..], "bits={bits} row {r}");
            }
        }
    }

    #[test]
    fn empty_ranges_are_noops() {
        // Regression: zero-length unpacks/decodes (including at odd
        // nibble offsets) must return empty, as the bit-loop reference
        // does, not panic.
        let bytes = [0xABu8, 0xCD];
        for bits in [3u32, 4, 8] {
            assert!(unpack_bits_range(&bytes, bits, 1, 0).is_empty(), "bits={bits}");
        }
        let x = Tensor::randn(&[6], &mut StdRng::seed_from_u64(9));
        let fp4 = PackedFpTensor::encode(&x, FpFormat::new(2, 1));
        fp4.decode_range_into(1, &mut []);
        fp4.decode_range_into(0, &mut []);
        let int4 = PackedIntTensor::encode(&x, IntFormat::from_range(4, -1.0, 1.0));
        int4.decode_range_into(3, &mut []);
        let empty = PackedFpTensor::encode(&Tensor::zeros(&[0]), FpFormat::new(4, 3));
        assert_eq!(empty.decode().numel(), 0);
    }

    #[test]
    fn decode_isa_paths_are_bit_identical() {
        // Every supported ISA must decode byte for byte like the scalar
        // walk — FP8 (gather path), FP4/INT4 (nibble-shuffle path,
        // including mid-byte entry/exit) and INT8, at odd starts and
        // lengths straddling the 8/16-element vector bodies.
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&[61], &mut rng).mul_scalar(2.0);
        let fps = [
            PackedFpTensor::encode(&x, FpFormat::new(4, 3)),
            PackedFpTensor::encode(&x, FpFormat::new(2, 1)),
        ];
        let ints = [
            PackedIntTensor::encode(&x, IntFormat::fit(&x, 8)),
            PackedIntTensor::encode(&x, IntFormat::fit(&x, 4)),
        ];
        for (start, len) in
            [(0usize, 61usize), (1, 60), (1, 17), (3, 16), (2, 7), (5, 1), (60, 1), (7, 0)]
        {
            for packed in &fps {
                let mut want = vec![0.0f32; len];
                packed.decode_range_into_as(Isa::Scalar, start, &mut want);
                for &isa in simd::available() {
                    let mut got = vec![f32::NAN; len];
                    packed.decode_range_into_as(isa, start, &mut got);
                    assert_eq!(got, want, "{:?} {} start={start} len={len}", isa, packed.format());
                }
            }
            for packed in &ints {
                let mut want = vec![0.0f32; len];
                packed.decode_range_into_as(Isa::Scalar, start, &mut want);
                for &isa in simd::available() {
                    let mut got = vec![f32::NAN; len];
                    packed.decode_range_into_as(isa, start, &mut got);
                    assert_eq!(got, want, "{:?} {} start={start} len={len}", isa, packed.format());
                }
            }
        }
    }

    #[test]
    fn unaligned_fp4_range_decode_is_consistent() {
        // Odd start indices exercise the mid-byte entry of the nibble LUT
        // path.
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[45], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(2, 1));
        let full = packed.decode();
        for start in [0usize, 1, 2, 7, 13] {
            for len in [1usize, 2, 5, 45 - start] {
                let mut buf = vec![0.0f32; len];
                packed.decode_range_into(start, &mut buf);
                assert_eq!(&full.data()[start..start + len], &buf[..], "start={start} len={len}");
            }
        }
    }

    #[test]
    fn serialization_header_contains_format() {
        let x = Tensor::ones(&[2, 2]);
        let packed = PackedFpTensor::encode(&x, FpFormat::with_bias(4, 3, 9.25));
        let bytes = packed.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 3);
        assert_eq!(f32::from_le_bytes(bytes[8..12].try_into().unwrap()), 9.25);
    }

    proptest! {
        #[test]
        fn pack_roundtrip_property(codes in prop::collection::vec(0u16..16, 1..64)) {
            let packed = pack_bits(&codes, 4);
            prop_assert_eq!(unpack_bits(&packed, 4, codes.len()), codes);
        }

        #[test]
        fn fast_pack_matches_bitloop_for_every_width(
            raw in prop::collection::vec(0u16..u16::MAX, 1..48),
            bits in 1u32..17,
        ) {
            let mask = ((1u32 << bits) - 1) as u16;
            let codes: Vec<u16> = raw.iter().map(|&c| c & mask).collect();
            prop_assert_eq!(pack_bits(&codes, bits), pack_bits_bitloop(&codes, bits));
        }

        #[test]
        fn fast_unpack_matches_bitloop_at_any_offset(
            raw in prop::collection::vec(0u16..u16::MAX, 2..48),
            bits in 1u32..17,
            start_frac in 0.0f64..1.0,
        ) {
            let mask = ((1u32 << bits) - 1) as u16;
            let codes: Vec<u16> = raw.iter().map(|&c| c & mask).collect();
            let packed = pack_bits(&codes, bits);
            let start = (start_frac * (codes.len() - 1) as f64) as usize;
            let count = codes.len() - start;
            prop_assert_eq!(
                unpack_bits_range(&packed, bits, start, count),
                unpack_bits_range_bitloop(&packed, bits, start, count)
            );
        }

        #[test]
        fn lut_decode_matches_bitloop_decode(
            vals in prop::collection::vec(-300.0f32..300.0, 1..64),
            pick in 0usize..6,
        ) {
            let fmt = [
                FpFormat::new(4, 3),
                FpFormat::new(5, 2),
                FpFormat::new(2, 1),
                FpFormat::new(1, 2),
                FpFormat::new(3, 4),
                FpFormat::with_bias(3, 4, 6.5),
            ][pick];
            let x = Tensor::from_vec(vals.clone(), &[vals.len()]);
            let packed = PackedFpTensor::encode(&x, fmt);
            let fast = packed.decode();
            let reference = packed.decode_via_bitloop();
            prop_assert_eq!(fast.data(), reference.data());
        }

        #[test]
        fn packed_fp_idempotent(vals in prop::collection::vec(-50.0f32..50.0, 1..32)) {
            let x = Tensor::from_vec(vals.clone(), &[vals.len()]);
            let fmt = FpFormat::new(4, 3);
            let once = PackedFpTensor::encode(&x, fmt).decode();
            let twice = PackedFpTensor::encode(&once, fmt).decode();
            prop_assert_eq!(once.data(), twice.data());
        }
    }
}
