//! Bit-packed tensors for low-bitwidth formats.
//!
//! Values are stored as codes of `total_bits` each, densely packed into
//! bytes. FP codes index the format's enumerable value table (sign ×
//! magnitude grid); INT codes are the affine levels of eq. (4). Decode is
//! bit-exact against the simulated quantizers in `fpdq-core` — the
//! property that makes the fake-quantized evaluation trustworthy.

use bytes::{BufMut, BytesMut};
use fpdq_core::{FpFormat, IntFormat};
use fpdq_tensor::Tensor;

/// Packs `codes` (each below `2^bits`) densely into bytes, little-endian
/// bit order.
pub fn pack_bits(codes: &[u16], bits: u32) -> Vec<u8> {
    assert!((1..=16).contains(&bits), "bits out of range");
    let total_bits = codes.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    for (i, &code) in codes.iter().enumerate() {
        debug_assert!(u32::from(code) < (1u32 << bits), "code {code} exceeds {bits} bits");
        let bit0 = i * bits as usize;
        for b in 0..bits as usize {
            if code >> b & 1 == 1 {
                out[(bit0 + b) / 8] |= 1 << ((bit0 + b) % 8);
            }
        }
    }
    out
}

/// Inverse of [`pack_bits`].
pub fn unpack_bits(bytes: &[u8], bits: u32, count: usize) -> Vec<u16> {
    unpack_bits_range(bytes, bits, 0, count)
}

/// Unpacks `count` codes starting at element index `start` — lets row
/// kernels stream one packed row without touching the rest of the
/// payload.
pub fn unpack_bits_range(bytes: &[u8], bits: u32, start: usize, count: usize) -> Vec<u16> {
    let mut out = Vec::with_capacity(count);
    for i in start..start + count {
        let bit0 = i * bits as usize;
        let mut code = 0u16;
        for b in 0..bits as usize {
            if bytes[(bit0 + b) / 8] >> ((bit0 + b) % 8) & 1 == 1 {
                code |= 1 << b;
            }
        }
        out.push(code);
    }
    out
}

/// A tensor stored in a packed ExMy floating-point format.
#[derive(Clone, Debug)]
pub struct PackedFpTensor {
    format: FpFormat,
    dims: Vec<usize>,
    bytes: Vec<u8>,
    /// Non-negative value table indexed by magnitude code.
    table: Vec<f32>,
}

impl PackedFpTensor {
    /// Quantizes and packs a tensor.
    pub fn encode(x: &Tensor, format: FpFormat) -> Self {
        let table = format.enumerate_non_negative();
        let mag_bits = format.exp_bits() + format.man_bits();
        let codes: Vec<u16> = x
            .data()
            .iter()
            .map(|&v| {
                let q = format.quantize_scalar(v);
                let mag = nearest_index(&table, q.abs());
                let sign = if q.is_sign_negative() && q != 0.0 { 1u16 } else { 0 };
                (sign << mag_bits) | mag as u16
            })
            .collect();
        PackedFpTensor {
            format,
            dims: x.dims().to_vec(),
            bytes: pack_bits(&codes, format.total_bits()),
            table,
        }
    }

    /// The storage format.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Logical shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Packed payload size in bytes (the §III footprint claim: FP8 = 1/4,
    /// FP4 = 1/8 of FP32).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes one element by flat index.
    pub fn get(&self, i: usize) -> f32 {
        let code = unpack_bits_range(&self.bytes, self.format.total_bits(), i, 1)[0];
        self.decode_code(code)
    }

    fn decode_code(&self, code: u16) -> f32 {
        let mag_bits = self.format.exp_bits() + self.format.man_bits();
        let mag = (code & ((1 << mag_bits) - 1)) as usize;
        let sign = code >> mag_bits & 1;
        let v = self.table[mag];
        if sign == 1 {
            -v
        } else {
            v
        }
    }

    /// Decodes the whole tensor.
    pub fn decode(&self) -> Tensor {
        let codes = unpack_bits(&self.bytes, self.format.total_bits(), self.numel());
        let data = codes.iter().map(|&c| self.decode_code(c)).collect();
        Tensor::from_vec(data, &self.dims)
    }

    /// Decodes one leading-axis slice (`[dims[0], rest]` row) into `out`,
    /// unpacking only that row's packed range.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the row length.
    pub fn decode_row(&self, row: usize, out: &mut [f32]) {
        assert!(!self.dims.is_empty(), "decode_row needs at least one axis");
        let cols = self.numel() / self.dims[0];
        assert_eq!(out.len(), cols, "row buffer size");
        let bits = self.format.total_bits();
        let codes = unpack_bits_range(&self.bytes, bits, row * cols, cols);
        for (slot, &code) in out.iter_mut().zip(codes.iter()) {
            *slot = self.decode_code(code);
        }
    }

    /// Serialises format + dims + payload (for weight files).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.format.exp_bits());
        buf.put_u32_le(self.format.man_bits());
        buf.put_f32_le(self.format.bias());
        buf.put_u32_le(self.dims.len() as u32);
        for &d in &self.dims {
            buf.put_u64_le(d as u64);
        }
        buf.put_slice(&self.bytes);
        buf.to_vec()
    }
}

fn nearest_index(sorted: &[f32], v: f32) -> usize {
    match sorted.binary_search_by(|x| x.total_cmp(&v)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= sorted.len() {
                sorted.len() - 1
            } else if (v - sorted[i - 1]).abs() <= (sorted[i] - v).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

/// A tensor stored as packed affine-integer levels.
#[derive(Clone, Debug)]
pub struct PackedIntTensor {
    format: IntFormat,
    dims: Vec<usize>,
    bytes: Vec<u8>,
}

impl PackedIntTensor {
    /// Quantizes and packs a tensor.
    pub fn encode(x: &Tensor, format: IntFormat) -> Self {
        let qmax = (1u32 << format.bits()) - 1;
        let codes: Vec<u16> = x
            .data()
            .iter()
            .map(|&v| {
                let level = ((v / format.scale()).round() + format.zero_point())
                    .clamp(0.0, qmax as f32);
                level as u16
            })
            .collect();
        PackedIntTensor {
            format,
            dims: x.dims().to_vec(),
            bytes: pack_bits(&codes, format.bits()),
        }
    }

    /// The storage format.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Logical shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Packed payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes the whole tensor.
    pub fn decode(&self) -> Tensor {
        let codes = unpack_bits(&self.bytes, self.format.bits(), self.numel());
        let data = codes
            .iter()
            .map(|&c| self.format.scale() * (c as f32 - self.format.zero_point()))
            .collect();
        Tensor::from_vec(data, &self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes: Vec<u16> = vec![0, 1, 7, 3, 5, 2, 6, 4, 7, 0, 1];
        for bits in [3u32, 4, 8] {
            let packed = pack_bits(&codes, bits);
            assert_eq!(unpack_bits(&packed, bits, codes.len()), codes, "bits={bits}");
        }
    }

    #[test]
    fn fp8_payload_is_quarter_of_fp32() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[64, 64], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(4, 3));
        assert_eq!(packed.payload_bytes(), 64 * 64); // 1 byte/elem vs 4
    }

    #[test]
    fn fp4_payload_is_eighth_of_fp32() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[64, 64], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(2, 1));
        assert_eq!(packed.payload_bytes(), 64 * 64 / 2); // 2 elems/byte
    }

    #[test]
    fn packed_fp_decode_is_bit_exact_with_simulated_quantizer() {
        // The packed representation must reproduce fpdq-core's simulated
        // quantization exactly — this is what licenses evaluating quality
        // with fake quantization.
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[33, 17], &mut rng).mul_scalar(3.0);
        for fmt in [
            FpFormat::new(4, 3),
            FpFormat::new(5, 2),
            FpFormat::new(2, 1),
            FpFormat::with_bias(3, 4, 6.5),
        ] {
            let packed = PackedFpTensor::encode(&x, fmt);
            let decoded = packed.decode();
            let simulated = fmt.quantize(&x);
            for (i, (a, b)) in decoded.data().iter().zip(simulated.data()).enumerate() {
                assert_eq!(a.to_bits(), b.abs().to_bits() | (a.to_bits() & 0x8000_0000),
                    "mismatch at {i} for {fmt}: packed {a} vs simulated {b}");
                assert!((a - b).abs() == 0.0, "{fmt}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn packed_int_decode_matches_simulated_quantizer() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[40, 10], &mut rng);
        for bits in [4u32, 8] {
            let fmt = IntFormat::fit(&x, bits);
            let packed = PackedIntTensor::encode(&x, fmt);
            let decoded = packed.decode();
            let simulated = fmt.quantize(&x);
            for (a, b) in decoded.data().iter().zip(simulated.data()) {
                assert!((a - b).abs() < 1e-6, "INT{bits}: {a} vs {b}");
            }
            assert_eq!(packed.payload_bytes(), (400 * bits as usize).div_ceil(8));
        }
    }

    #[test]
    fn decode_row_matches_full_decode() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[5, 12], &mut rng);
        let packed = PackedFpTensor::encode(&x, FpFormat::new(3, 4));
        let full = packed.decode();
        let mut row = vec![0.0f32; 12];
        packed.decode_row(3, &mut row);
        assert_eq!(&full.data()[36..48], &row[..]);
    }

    #[test]
    fn serialization_header_contains_format() {
        let x = Tensor::ones(&[2, 2]);
        let packed = PackedFpTensor::encode(&x, FpFormat::with_bias(4, 3, 9.25));
        let bytes = packed.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 3);
        assert_eq!(f32::from_le_bytes(bytes[8..12].try_into().unwrap()), 9.25);
    }

    proptest! {
        #[test]
        fn pack_roundtrip_property(codes in prop::collection::vec(0u16..16, 1..64)) {
            let packed = pack_bits(&codes, 4);
            prop_assert_eq!(unpack_bits(&packed, 4, codes.len()), codes);
        }

        #[test]
        fn packed_fp_idempotent(vals in prop::collection::vec(-50.0f32..50.0, 1..32)) {
            let x = Tensor::from_vec(vals.clone(), &[vals.len()]);
            let fmt = FpFormat::new(4, 3);
            let once = PackedFpTensor::encode(&x, fmt).decode();
            let twice = PackedFpTensor::encode(&once, fmt).decode();
            prop_assert_eq!(once.data(), twice.data());
        }
    }
}
