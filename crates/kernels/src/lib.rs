//! # fpdq-kernels
//!
//! Bit-exact software kernels for the quantized representations — the
//! packed *execution engine* of the reproduction:
//!
//! * [`packed`] — bit-packed storage of arbitrary ExMy floating-point and
//!   INT formats (FP8 → 1 byte/element, FP4/INT4 → 2 elements/byte),
//!   proving the memory-footprint claims of the paper's §III;
//! * [`gemm`] / [`conv`] — dequantize-on-the-fly matmul and convolution
//!   over packed weights (the compute pattern of weight-only-quantized
//!   inference);
//! * [`exec`] — the wiring layer that flips a quantized U-Net from dense
//!   fake-quantized execution to these packed kernels;
//! * [`sparse`] — sparsity-exploiting kernels over the zeros that the
//!   paper's quantizer creates (§VI-G): an unstructured compressed-row
//!   format and NVIDIA-style structured 2:4 pruning with metadata, the
//!   "future work" optimisation the paper points at.
//!
//! # Packed execution architecture
//!
//! The hot path is built from three layers, each independently tested for
//! bit-exactness against the simulated quantizers:
//!
//! 1. **LUT decode** ([`packed`]). Formats whose code width divides a byte
//!    (FP4/INT4, FP8/INT8 — everything the paper deploys) decode through a
//!    256-entry per-byte lookup table of pre-signed `f32` values: one
//!    table load per element, no bit twiddling. Encode goes through a
//!    precomputed boundary table (exact thresholds found by bit-level
//!    bisection against the reference quantizer), eliminating the
//!    per-element `log2`/`powf` + binary search. Odd widths fall back to
//!    word-level shift unpacking.
//! 2. **Tiled dequantize-on-the-fly** ([`gemm`], [`conv`]). The GEMM
//!    decodes a small tile of packed weight rows into per-worker scratch
//!    and amortises it across all activation rows through the 4×4
//!    register-blocked NT micro-kernel shared with the dense
//!    `matmul_nt` path ([`fpdq_tensor::matmul::gemm_nt_serial`]); packed
//!    weights therefore run within ~10% of dense FP32 while moving 4-8×
//!    fewer weight bytes. The convolution keeps a per-thread scratch arena
//!    (decoded filter bank + one `im2col` buffer) reused across its
//!    batches — nothing allocates per batch element.
//! 3. **Model wiring** ([`exec`]). `pack_unet` re-encodes a PTQ'd model's
//!    baked weights into their searched formats and installs packed
//!    forward overrides into every quantized Linear/Conv layer
//!    ([`fpdq_nn::PackedSlot`]), so end-to-end sampling exercises the
//!    packed path instead of fake-quantized dense matmuls. Activation
//!    fake-quantizers keep running in the layer taps ahead of the packed
//!    kernels.
//!
//! The pre-optimisation bit-loop implementations survive as `*_bitloop`
//! reference functions; property tests pin the fast paths to them, and the
//! `pack`/`gemm` groups of the `fpdq-bench` criterion suite benchmark both
//! sides (LUT-vs-bitloop decode, tiled-vs-rowwise GEMM) in one run.

pub mod conv;
pub mod exec;
pub mod gemm;
pub mod packed;
pub mod sparse;

pub use conv::{conv2d_packed, conv2d_packed_fp, conv2d_packed_int};
pub use exec::{install_packed_weight, pack_unet, unpack_unet, PackReport, PackedLayerInfo};
pub use gemm::{gemm_packed, gemm_packed_fp, gemm_packed_int};
pub use packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
pub use sparse::{CsrWeights, TwoFourWeights};
