//! # fpdq-kernels
//!
//! Bit-exact software kernels for the quantized representations — the
//! packed *execution engine* of the reproduction:
//!
//! * [`packed`] — bit-packed storage of arbitrary ExMy floating-point and
//!   INT formats (FP8 → 1 byte/element, FP4/INT4 → 2 elements/byte),
//!   proving the memory-footprint claims of the paper's §III;
//! * [`gemm`] / [`conv`] — dequantize-on-the-fly matmul and convolution
//!   over packed weights (the compute pattern of weight-only-quantized
//!   inference);
//! * [`exec`] — the wiring layer that flips a quantized U-Net from dense
//!   fake-quantized execution to these packed kernels;
//! * [`sparse`] — panel-packed sparse kernels over the zeros that the
//!   paper's quantizer creates (§VI-G): unstructured CSR and NVIDIA-style
//!   structured 2:4 pruning, both storing quantized codes decoded through
//!   the same LUTs as [`packed`], running the dense GEMM's row-parallel
//!   panel schedule with AVX2/NEON index-driven kernels under the
//!   bit-identity contract, and dispatching back to the dense engine
//!   above the measured density crossover
//!   ([`schedule::pick_sparse_regime`]) so sparsity never loses to dense
//!   (layout contract in `docs/sparse.md`).
//!
//! # Fused-epilogue packed execution architecture
//!
//! The hot path is built from four layers, each independently tested for
//! bit-exactness against the simulated quantizers:
//!
//! 1. **LUT decode** ([`packed`]). Formats whose code width divides a byte
//!    (FP4/INT4, FP8/INT8 — everything the paper deploys) decode through a
//!    256-entry per-byte lookup table of pre-signed `f32` values: one
//!    table load per element, no bit twiddling. Encode goes through a
//!    precomputed boundary table (exact thresholds found by bit-level
//!    bisection against the reference quantizer), eliminating the
//!    per-element `log2`/`powf` + binary search. Odd widths fall back to
//!    word-level shift unpacking.
//! 2. **Fused activation quantization** ([`fpdq_core::BoundaryQuantizer`]
//!    / [`fpdq_core::PanelQuantizer`]). The weight+activation
//!    configuration no longer fake-quantizes the whole activation tensor
//!    up front: activations are quantized *inside* the tile loops through
//!    signed boundary tables (branch-free, bucket-indexed bisection — no
//!    transcendentals, no intermediate tensor), per-tensor or
//!    per-channel, bit-exact with the simulated quantizers.
//! 3. **Tiled dequantize-on-the-fly with batched regimes** ([`gemm`],
//!    [`conv`], [`schedule`]). The GEMM packs activation micro-panels
//!    (quantizing as it packs — each row exactly once per call) into the
//!    `[k][8]` interleaved layout of the 4×8 NT panel micro-kernel shared
//!    with dense `matmul_nt` ([`fpdq_tensor::matmul::gemm_nt_panel`]),
//!    and streams packed weight rows through the LUT decoder 8 rows at a
//!    time — each weight tile decoded **once per call**, however many
//!    images the batched activation matrix stacks; packed weights
//!    therefore run at or below dense-FP32 latency while moving 4-8×
//!    fewer weight bytes, and the per-image cost *falls* with the batch.
//!    The convolution is *implicit GEMM on the same micro-kernel*: each
//!    8-pixel output tile's `im2col` columns are lowered on the fly
//!    directly into an NT micro-panel arena
//!    ([`fpdq_tensor::conv::im2col_panel_into`]) and fed straight to
//!    `gemm_nt_panel` against the once-per-call decoded filter bank — the
//!    whole-image `im2col` matrix never materialises, and conv inherits
//!    the GEMM's SIMD dispatch, fused activation quant, and decode
//!    amortisation instead of duplicating them. Both kernels pick their
//!    parallel regime per call from the actual tile counts against the
//!    worker count ([`schedule`]): the GEMM between weight-row-parallel
//!    and activation-row-parallel (narrow layers under batched
//!    activations), the convolution between batch-parallel per-worker
//!    panel arenas and channel-parallel workers against a shared
//!    per-image panel bank. Because the micro-kernel accumulates every
//!    output element in plain `k` order in every code path, results are
//!    bit-identical across regimes, tile schedules and thread counts,
//!    and the fused path is bit-exact against "fake-quantize first, then
//!    run the same kernel" — so batch-N sampling reproduces N batch-1
//!    runs bit-for-bit (`tests/batched_consistency.rs`).
//! 4. **Model wiring** ([`exec`]). `pack_unet` re-encodes a PTQ'd model's
//!    baked weights into their searched formats and installs packed
//!    forward overrides into every quantized Linear/Conv layer
//!    ([`fpdq_nn::PackedSlot`]). Layers with one whole-input activation
//!    format get the *fused* forward: their tap quantizer closure is
//!    suspended into the slot (restored by `unpack_unet`) and
//!    quantization runs inside the packed kernel. Split-quantized layers
//!    (separate trunk/skip formats) keep their tap closures; idempotency
//!    of fake quantization keeps the packed kernel exact on the
//!    pre-quantized input.
//!
//! # Runtime SIMD dispatch
//!
//! The three hot loops — the 4×8 NT micro-kernel
//! ([`fpdq_tensor::matmul::gemm_nt_panel`]), the per-byte LUT decode
//! ([`packed`]), and the bucketed boundary-table activation quantizer
//! ([`fpdq_core::BoundaryQuantizer`]) — carry explicit SIMD
//! implementations selected at *runtime* by [`fpdq_tensor::simd`]: AVX2
//! on x86-64 (4×8 accumulator blocks in 256-bit registers; 32-byte
//! gather/shuffle LUT decode; 8-lane compare-stripe bucket sweeps), NEON
//! on aarch64 (micro-kernel only; decode and quantize run the scalar walk
//! there). CPU features are probed once per process and
//! `FPDQ_FORCE_SCALAR=1` pins everything to the scalar reference
//! kernels.
//!
//! **The bit-identity contract** (specified in [`fpdq_tensor::simd`]):
//! every ISA path produces bit-identical output to the scalar reference.
//! The SIMD kernels therefore perform the same IEEE-754 operations in the
//! same per-element order — mul-then-add per ascending `k`, never a fused
//! multiply-add, same operand order, same NaN/±∞ handling. Every
//! dispatched entry point has an explicit-ISA sibling
//! (`gemm_packed_fused_as`, `conv2d_packed_fused_as`,
//! [`PackedWeights::decode_range_into_as`], `quantize_slice_into_as`,
//! `gemm_nt_panel_as`) so the differential suite in
//! `tests/simd_consistency.rs` drives both sides of every dispatch in one
//! process; CI re-runs the whole workspace under `FPDQ_FORCE_SCALAR=1`,
//! under `RUSTFLAGS="-C target-feature=+avx2,+fma"`, and build-checks the
//! NEON path for `aarch64-unknown-linux-gnu`. To add a new ISA path,
//! follow the checklist in [`fpdq_tensor::simd`] — implement behind
//! runtime detection, obey the contract, route it in the `*_as`
//! dispatchers (falling back to scalar when unsupported), and the
//! ISA-sweeping tests pick it up automatically.
//!
//! # Threading model
//!
//! Parallelism comes from `fpdq_tensor::parallel` scoped-thread helpers:
//! the GEMM splits packed weight rows or activation rows on the 4-row
//! register-block grid (`parallel_rows_aligned`), the conv splits
//! batches or output channels — regime chosen per call by [`schedule`]
//! from tile counts vs. workers — and every worker owns a scratch arena
//! (decoded weight tile, quantized activation block, quantized image,
//! `im2col` micro-panel) so no synchronisation happens inside a tile;
//! the pre-quantized activation panel bank, the decoded filter bank, and
//! the channel-parallel conv's per-image lowered panel bank are built
//! once per call and shared read-only. Worker-chunk boundaries are
//! pinned to the block grid, which — together with the fixed-`k`-order
//! accumulation — makes multi-threaded output bit-identical to
//! single-threaded output. `FPDQ_THREADS` caps the worker count; the
//! `*_fused_in` entry points take an explicit count so tests and tuners
//! can sweep schedules in one process.
//!
//! The pre-optimisation bit-loop implementations survive as `*_bitloop`
//! reference functions; property tests pin the fast paths to them, and the
//! `pack`/`gemm` groups of the `fpdq-bench` criterion suite benchmark both
//! sides (LUT-vs-bitloop decode, tiled-vs-rowwise GEMM) in one run and
//! persist machine-readable results to `BENCH_kernels.json`.

pub mod conv;
pub mod exec;
pub mod gemm;
pub mod packed;
pub mod sparse;

/// Batched execution-regime selection (shared with the dense kernels in
/// `fpdq-tensor`, where the decision functions live).
pub use fpdq_tensor::schedule;

pub use conv::{
    conv2d_packed, conv2d_packed_fp, conv2d_packed_fused, conv2d_packed_fused_as,
    conv2d_packed_fused_in, conv2d_packed_int,
};
pub use exec::{
    install_packed_weight, pack_unet, pack_unet_sparse, try_install_packed_weight,
    try_install_prebuilt, try_install_sparse_weight, try_pack_unet, try_pack_unet_sparse,
    unpack_unet, PackReport, PackedLayerInfo, PackedTensor, SparseMode,
};
pub use gemm::{
    gemm_packed, gemm_packed_fp, gemm_packed_fused, gemm_packed_fused_as, gemm_packed_fused_in,
    gemm_packed_int,
};
pub use packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
pub use schedule::{
    pick_conv_regime, pick_gemm_regime, pick_sparse_regime, ConvRegime, GemmRegime, SparseRegime,
};
pub use sparse::{CsrWeights, TwoFourWeights};
