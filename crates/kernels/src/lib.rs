//! # fpdq-kernels
//!
//! Bit-exact software kernels for the quantized representations — the
//! "kernel evaluation" layer of the reproduction:
//!
//! * [`packed`] — bit-packed storage of arbitrary ExMy floating-point and
//!   INT formats (FP8 → 1 byte/element, FP4/INT4 → 2 elements/byte),
//!   proving the memory-footprint claims of the paper's §III and
//!   providing the lookup-table encode/decode a software FP8/FP4 runtime
//!   needs;
//! * [`gemm`] — dequantize-on-the-fly matrix multiplication over packed
//!   weights (the compute pattern of weight-only-quantized inference);
//! * [`sparse`] — sparsity-exploiting kernels over the zeros that the
//!   paper's quantizer creates (§VI-G): an unstructured compressed-row
//!   format and NVIDIA-style structured 2:4 pruning with metadata, the
//!   "future work" optimisation the paper points at.
//!
//! Criterion microbenchmarks over these kernels live in `fpdq-bench`.

pub mod conv;
pub mod gemm;
pub mod packed;
pub mod sparse;

pub use conv::conv2d_packed_fp;
pub use gemm::{gemm_packed_fp, gemm_packed_int};
pub use packed::{PackedFpTensor, PackedIntTensor};
pub use sparse::{CsrWeights, TwoFourWeights};
