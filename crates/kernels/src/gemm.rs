//! Dequantize-on-the-fly GEMM over packed weights.
//!
//! The execution pattern of weight-quantized inference on hardware without
//! native low-bit units: weights stream from memory in packed form (4-8×
//! less traffic than FP32) and are expanded to the accumulator type at the
//! register level. Activations can optionally be fake-quantized on entry,
//! making the kernel numerically identical to the simulated
//! weight+activation quantization used in the quality experiments.
//!
//! Both the FP and INT paths share one blocked implementation: each worker
//! decodes a small tile of packed weight rows into reusable scratch (LUT
//! decode, one table load per element), then amortises that tile across
//! every activation row through the register-blocked
//! [`fpdq_tensor::matmul::gemm_nt_serial`] micro-kernel. No path ever
//! densifies the whole weight tensor, so the memory-traffic claim holds
//! for INT formats too.

use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use fpdq_core::TensorQuantizer;
use fpdq_tensor::matmul::gemm_nt_serial;
use fpdq_tensor::parallel::parallel_rows;
use fpdq_tensor::Tensor;

/// Packed weight rows decoded per scratch refill. Large enough to amortise
/// the decode across the register tiles, small enough to stay cache-hot
/// (8 rows × k floats).
const DECODE_TILE_ROWS: usize = 8;

/// `a [m,k] × wᵀ [n,k] → [m,n]` for any packed weight representation.
///
/// Parallelises over weight-row chunks: each worker decodes
/// [`DECODE_TILE_ROWS`] packed rows at a time into its scratch buffer and
/// reuses the decoded tile against all `m` activation rows via the tiled
/// NT micro-kernel, writing an `[n, m]` block that is transposed once at
/// the end.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed<W: PackedWeights>(a: &Tensor, w: &W, act: Option<&TensorQuantizer>) -> Tensor {
    assert_eq!(a.ndim(), 2, "activations must be [m, k]");
    assert_eq!(w.dims().len(), 2, "weights must be [n, k]");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, wk) = (w.dims()[0], w.dims()[1]);
    assert_eq!(k, wk, "inner dims differ: {k} vs {wk}");
    let a_q = match act {
        Some(q) => q.quantize(a),
        None => a.clone(),
    };
    let ad = a_q.data();
    let mut out = vec![0.0f32; n * m];
    parallel_rows(&mut out, n, m, 4, |row_start, chunk| {
        let rows = chunk.len() / m.max(1);
        let mut wtile = vec![0.0f32; DECODE_TILE_ROWS * k];
        let mut jt = 0;
        while jt < rows {
            let nh = DECODE_TILE_ROWS.min(rows - jt);
            w.decode_range_into((row_start + jt) * k, &mut wtile[..nh * k]);
            // c block rows jt..jt+nh of the [n, m] output: w-tile × aᵀ.
            gemm_nt_serial(&wtile[..nh * k], ad, &mut chunk[jt * m..(jt + nh) * m], nh, k, m);
            jt += nh;
        }
    });
    // `out` is laid out [n, m]; transpose to [m, n].
    Tensor::from_vec(out, &[n, m]).transpose()
}

/// `a [m,k] × wᵀ [n,k] → [m,n]` with packed FP weights, optionally
/// fake-quantizing the activations with `act` first (the paper's
/// weight+activation configuration).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed_fp(a: &Tensor, w: &PackedFpTensor, act: Option<&TensorQuantizer>) -> Tensor {
    gemm_packed(a, w, act)
}

/// `a [m,k] × wᵀ [n,k] → [m,n]` with packed INT weights, streaming rows
/// exactly like the FP path (no dense materialisation).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed_int(a: &Tensor, w: &PackedIntTensor, act: Option<&TensorQuantizer>) -> Tensor {
    gemm_packed(a, w, act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_fp_gemm_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[7, 24], &mut rng);
        let w = Tensor::randn(&[13, 24], &mut rng);
        let fmt = FpFormat::new(4, 3);
        let packed = PackedFpTensor::encode(&w, fmt);
        let fast = gemm_packed_fp(&a, &packed, None);
        let reference = a.matmul_nt(&fmt.quantize(&w));
        assert_eq!(fast.dims(), &[7, 13]);
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn packed_fp_gemm_with_act_quant_matches_double_fake_quant() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[5, 16], &mut rng);
        let w = Tensor::randn(&[6, 16], &mut rng);
        let wfmt = FpFormat::new(2, 1);
        let afmt = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let packed = PackedFpTensor::encode(&w, wfmt);
        let fast = gemm_packed_fp(&a, &packed, Some(&afmt));
        let reference = afmt.quantize(&a).matmul_nt(&wfmt.quantize(&w));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_int_gemm_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[4, 32], &mut rng);
        let w = Tensor::randn(&[9, 32], &mut rng);
        let fmt = IntFormat::fit(&w, 8);
        let packed = PackedIntTensor::encode(&w, fmt);
        let fast = gemm_packed_int(&a, &packed, None);
        let reference = a.matmul_nt(&fmt.quantize(&w));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_int_gemm_streams_odd_bitwidths() {
        // INT3/INT5 exercise the non-LUT generic decode inside the tiled
        // kernel (bit-level row streaming, still no densification).
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&[3, 21], &mut rng);
        let w = Tensor::randn(&[10, 21], &mut rng);
        for bits in [3u32, 5] {
            let fmt = IntFormat::fit(&w, bits);
            let packed = PackedIntTensor::encode(&w, fmt);
            let fast = gemm_packed_int(&a, &packed, None);
            let reference = a.matmul_nt(&fmt.quantize(&w));
            for (x, y) in fast.data().iter().zip(reference.data()) {
                assert!((x - y).abs() < 1e-4, "INT{bits}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn tiled_gemm_handles_edge_shapes() {
        // m/n/k off the 4×4 tile grid, single activation rows, and tiny k
        // — every case must agree with the dense reference.
        let mut rng = StdRng::seed_from_u64(3);
        let fmt = FpFormat::new(4, 3);
        for (m, n, k) in [
            (1usize, 1usize, 1usize),
            (1, 13, 24),
            (2, 3, 2),
            (3, 9, 3),
            (5, 7, 31),
            (4, 4, 4),
            (6, 17, 33),
            (9, 8, 128),
            (33, 31, 65),
        ] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let w = Tensor::randn(&[n, k], &mut rng);
            let packed = PackedFpTensor::encode(&w, fmt);
            let fast = gemm_packed_fp(&a, &packed, None);
            let reference = a.matmul_nt(&fmt.quantize(&w));
            assert_eq!(fast.dims(), &[m, n]);
            for (i, (x, y)) in fast.data().iter().zip(reference.data()).enumerate() {
                assert!((x - y).abs() < 1e-3, "({m},{n},{k}) elem {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let w = PackedFpTensor::encode(&Tensor::zeros(&[4, 5]), FpFormat::new(4, 3));
        gemm_packed_fp(&a, &w, None);
    }
}
