//! Dequantize-on-the-fly GEMM over packed weights, with the activation
//! quantizer fused into the tile loop.
//!
//! The execution pattern of weight-quantized inference on hardware without
//! native low-bit units: weights stream from memory in packed form (4-8×
//! less traffic than FP32) and are expanded to the accumulator type at the
//! register level. In the weight+activation configuration the activations
//! are quantized *inside* the tile loop through the boundary tables of
//! [`fpdq_core::BoundaryQuantizer`] — no whole-tensor fake-quant pass, no
//! `log2`/`powf` per element, no intermediate activation tensor — while
//! staying bit-exact against the simulated quantizers.
//!
//! # Tile schedules
//!
//! Two regimes, picked per call by [`pick_gemm_regime`] from the actual
//! `m`/`n` tile counts against the worker count (see [`crate::schedule`]):
//!
//! * **Row-parallel** (weight-stationary; wide layers, the batch-1
//!   default). The activation rows are quantized + interleaved into
//!   shared `[k][NT_NR]` panels ([`pack_nt_panel`]) once, in parallel —
//!   the *fused epilogue*: quantization happens as the micro-panel is
//!   packed, via branch-free boundary-table bisection, and each
//!   activation row is quantized exactly once per call (not once per
//!   worker). Workers then split the weight rows on the register-block
//!   grid ([`parallel_rows_aligned_in`]), stream their packed rows
//!   [`WTILE_ROWS`] at a time through the LUT decoder — each weight tile
//!   decoded **once per call**, however many images the activation
//!   matrix stacks — and run the shared 4×8 NT micro-kernel
//!   ([`gemm_nt_panel`]) tile × panel into a `[n, m]` buffer transposed
//!   once at the end.
//! * **Column-parallel** (activation-stationary; batched activations
//!   against narrow layers, where `⌈n/4⌉` grains would under-fill the
//!   workers). The packed weights are decoded once into a shared panel
//!   bank; workers split the *activation rows*, quantize their own rows
//!   in [`ACT_BLOCK`]-row scratch blocks (panel streaming), and sweep
//!   the weight panels — writing the `[m, n]` output directly, no
//!   transpose.
//!
//! Because the micro-kernel accumulates each output element in plain `k`
//! order in every path (and `a·w` multiplies commute bitwise), the result
//! is bit-identical however the tiles are scheduled — across regimes,
//! thread counts, and between the fused path and the reference
//! "fake-quantize the whole tensor first" path.
//!
//! The packed convolution ([`crate::conv`]) is *implicit GEMM* on the
//! same micro-kernel: it lowers `im2col` micro-panels on the fly into
//! the `[k][NT_NR]` layout described above, so every property of this
//! module — once-per-call decode, fused activation quant, SIMD dispatch,
//! the bit-identity contract — carries over to conv without a second
//! implementation.

use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use crate::schedule::{pick_gemm_regime, GemmRegime, ACT_BLOCK};
use fpdq_core::{PanelQuantizer, TensorQuantizer};
use fpdq_tensor::matmul::{gemm_nt_panel_as, pack_nt_panel, NT_MR, NT_NR};
use fpdq_tensor::parallel::{num_threads, parallel_rows_aligned_in, parallel_rows_in};
use fpdq_tensor::simd::{self, Isa};
use fpdq_tensor::Tensor;

/// Packed weight rows decoded per scratch refill. Large enough to
/// amortise the decode across the register blocks, small enough to stay
/// cache-hot (8 rows × k floats).
const WTILE_ROWS: usize = 8;

/// `a [m,k] × wᵀ [n,k] → [m,n]` for any packed weight representation,
/// optionally fake-quantizing the activations per-tensor on the way in
/// (the paper's weight+activation configuration).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed<W: PackedWeights>(a: &Tensor, w: &W, act: Option<&TensorQuantizer>) -> Tensor {
    let pq = act.map(PanelQuantizer::per_tensor);
    gemm_packed_fused(a, w, pq.as_ref())
}

/// [`gemm_packed`] with an explicit [`PanelQuantizer`], covering the
/// per-channel activation granularity as well: with `channels == k`,
/// column `j` of the activations quantizes through table `j`.
///
/// # Panics
///
/// Panics on shape mismatches, or if a per-channel quantizer's channel
/// count differs from `k`.
pub fn gemm_packed_fused<W: PackedWeights>(
    a: &Tensor,
    w: &W,
    act: Option<&PanelQuantizer>,
) -> Tensor {
    gemm_packed_fused_as(a, w, act, simd::active())
}

/// [`gemm_packed_fused`] on an explicit ISA path: weight decode,
/// activation quantization and the NT micro-kernel all run the named
/// implementation (see [`fpdq_tensor::simd`]). Results are bit-identical
/// across ISAs — the property `tests/simd_consistency.rs` pins; an
/// unsupported `isa` falls back to scalar.
///
/// # Panics
///
/// Panics on shape mismatches, or if a per-channel quantizer's channel
/// count differs from `k`.
pub fn gemm_packed_fused_as<W: PackedWeights>(
    a: &Tensor,
    w: &W,
    act: Option<&PanelQuantizer>,
    isa: Isa,
) -> Tensor {
    gemm_packed_fused_in(a, w, act, isa, num_threads())
}

/// [`gemm_packed_fused_as`] with an explicit worker count: both the
/// regime decision ([`pick_gemm_regime`]) and the parallel split use
/// `workers` instead of the process-wide thread count. The batched
/// differential suite sweeps this in one process (where `FPDQ_THREADS`
/// is cached); results are bit-identical for every worker count.
///
/// # Panics
///
/// Panics on shape mismatches, or if a per-channel quantizer's channel
/// count differs from `k`.
pub fn gemm_packed_fused_in<W: PackedWeights>(
    a: &Tensor,
    w: &W,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    workers: usize,
) -> Tensor {
    assert_eq!(a.ndim(), 2, "activations must be [m, k]");
    assert_eq!(w.dims().len(), 2, "weights must be [n, k]");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, wk) = (w.dims()[0], w.dims()[1]);
    assert_eq!(k, wk, "inner dims differ: {k} vs {wk}");
    if let Some(pq) = act {
        assert!(
            pq.channels() == 1 || pq.channels() == k,
            "per-channel activation quantizer has {} channels for k = {k}",
            pq.channels()
        );
    }
    if m == 0 || n == 0 || k == 0 {
        // Degenerate dims: an empty sum; the tile loops would slice past
        // the packed payload.
        return Tensor::zeros(&[m, n]);
    }
    match pick_gemm_regime(m, n, workers) {
        GemmRegime::RowParallel => gemm_row_parallel(a, w, act, isa, workers),
        GemmRegime::ColParallel => gemm_col_parallel(a, w, act, isa, workers),
    }
}

/// Quantizes (when `act` is set) and interleaves activation rows
/// `[p0 .. p0 + chunk panels)` of `a` into `[k][NT_NR]` panels. Shared
/// with the sparse row-parallel schedule ([`crate::sparse`]), which
/// builds the identical panel bank before its index-driven kernels.
pub(crate) fn pack_act_panels(
    ad: &[f32],
    m: usize,
    k: usize,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    p0: usize,
    chunk: &mut [f32],
) {
    let mut qrows = act.map(|_| vec![0.0f32; NT_NR * k]);
    for (pi, bp) in chunk.chunks_mut(k * NT_NR).enumerate() {
        let j0 = (p0 + pi) * NT_NR;
        let nw = NT_NR.min(m - j0);
        let src = &ad[j0 * k..(j0 + nw) * k];
        match (act, &mut qrows) {
            (Some(pq), Some(qr)) => {
                // group = 1: the channel of element `i` within the
                // row-major block is `i % k`, i.e. its column.
                pq.quantize_panel_into_as(isa, src, &mut qr[..nw * k], 1);
                pack_nt_panel(&qr[..nw * k], k, nw, bp);
            }
            _ => pack_nt_panel(src, k, nw, bp),
        }
    }
}

/// Weight-stationary schedule: shared pre-quantized activation panels,
/// workers split the packed weight rows and decode each of their tiles
/// exactly once per call.
fn gemm_row_parallel<W: PackedWeights>(
    a: &Tensor,
    w: &W,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    workers: usize,
) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = w.dims()[0];
    let ad = a.data();
    // Fused epilogue, hoisted: every activation row quantizes + packs
    // exactly once per call, in parallel, into the shared panel bank.
    let mpanels = m.div_ceil(NT_NR);
    let mut panels = vec![0.0f32; mpanels * k * NT_NR];
    parallel_rows_in(workers, &mut panels, mpanels, k * NT_NR, 1, |p0, chunk| {
        pack_act_panels(ad, m, k, act, isa, p0, chunk);
    });
    let mut out = vec![0.0f32; n * m];
    parallel_rows_aligned_in(workers, &mut out, n, m, 4, NT_MR, |row_start, chunk| {
        let rows = chunk.len() / m;
        // Per-worker decode scratch, reused across this worker's tiles.
        let mut wtile = vec![0.0f32; WTILE_ROWS * k];
        let mut wt = 0;
        while wt < rows {
            let wh = WTILE_ROWS.min(rows - wt);
            // Each weight tile decodes once per call — then streams
            // against every activation panel (the whole batch).
            w.decode_range_into_as(isa, (row_start + wt) * k, &mut wtile[..wh * k]);
            for p in 0..mpanels {
                let j0 = p * NT_NR;
                let nw = NT_NR.min(m - j0);
                gemm_nt_panel_as(
                    isa,
                    &wtile[..wh * k],
                    &panels[p * k * NT_NR..(p + 1) * k * NT_NR],
                    &mut chunk[wt * m..(wt + wh) * m],
                    wh,
                    k,
                    m,
                    j0,
                    nw,
                );
            }
            wt += wh;
        }
    });
    // `out` is laid out [n, m]; transpose to [m, n].
    Tensor::from_vec(out, &[n, m]).transpose()
}

/// Activation-stationary schedule for batched activations against narrow
/// layers: the packed weights decode once into a shared panel bank, and
/// workers split the activation rows — quantizing their own rows in
/// [`ACT_BLOCK`]-row blocks and writing the `[m, n]` output directly.
///
/// Bit-identity with the row-parallel schedule: the micro-kernel
/// accumulates each output element in plain ascending-`k` order in both,
/// and swapping which operand rides the panel only swaps the factor
/// order of each IEEE multiply, which is bitwise commutative.
fn gemm_col_parallel<W: PackedWeights>(
    a: &Tensor,
    w: &W,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    workers: usize,
) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = w.dims()[0];
    let ad = a.data();
    // Decode the packed weights exactly once per call, in parallel,
    // straight into the shared `[k][NT_NR]` panel bank: each worker
    // expands one panel's rows into a small row-major scratch and
    // interleaves from there, so the only weight-sized buffer is the
    // bank itself (~`n × k` floats, transient for this call).
    let wtiles = n.div_ceil(NT_NR);
    let mut wpanels = vec![0.0f32; wtiles * k * NT_NR];
    parallel_rows_in(workers, &mut wpanels, wtiles, k * NT_NR, 1, |t0, chunk| {
        let mut wrows = vec![0.0f32; NT_NR * k];
        for (ti, bp) in chunk.chunks_mut(k * NT_NR).enumerate() {
            let j0 = (t0 + ti) * NT_NR;
            let nw = NT_NR.min(n - j0);
            w.decode_range_into_as(isa, j0 * k, &mut wrows[..nw * k]);
            pack_nt_panel(&wrows[..nw * k], k, nw, bp);
        }
    });
    let mut out = vec![0.0f32; m * n];
    parallel_rows_aligned_in(workers, &mut out, m, n, 4, NT_MR, |m0, chunk| {
        let rows = chunk.len() / n;
        // Fused epilogue: this worker quantizes its own activation rows,
        // ACT_BLOCK at a time (bounded panel streaming), then sweeps the
        // shared weight panels.
        let mut qblock = act.map(|_| vec![0.0f32; ACT_BLOCK * k]);
        let mut mb = 0;
        while mb < rows {
            let mh = ACT_BLOCK.min(rows - mb);
            let src = &ad[(m0 + mb) * k..(m0 + mb + mh) * k];
            let arows = match (act, &mut qblock) {
                (Some(pq), Some(qb)) => {
                    pq.quantize_panel_into_as(isa, src, &mut qb[..mh * k], 1);
                    &qb[..mh * k]
                }
                _ => src,
            };
            let cblock = &mut chunk[mb * n..(mb + mh) * n];
            for t in 0..wtiles {
                let j0 = t * NT_NR;
                let nw = NT_NR.min(n - j0);
                gemm_nt_panel_as(
                    isa,
                    arows,
                    &wpanels[t * k * NT_NR..(t + 1) * k * NT_NR],
                    cblock,
                    mh,
                    k,
                    n,
                    j0,
                    nw,
                );
            }
            mb += mh;
        }
    });
    Tensor::from_vec(out, &[m, n])
}

/// `a [m,k] × wᵀ [n,k] → [m,n]` with packed FP weights, optionally
/// quantizing the activations in the fused tile loop (the paper's
/// weight+activation configuration).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed_fp(a: &Tensor, w: &PackedFpTensor, act: Option<&TensorQuantizer>) -> Tensor {
    gemm_packed(a, w, act)
}

/// `a [m,k] × wᵀ [n,k] → [m,n]` with packed INT weights, streaming rows
/// exactly like the FP path (no dense materialisation).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed_int(a: &Tensor, w: &PackedIntTensor, act: Option<&TensorQuantizer>) -> Tensor {
    gemm_packed(a, w, act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use fpdq_tensor::parallel::num_threads;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_fp_gemm_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[7, 24], &mut rng);
        let w = Tensor::randn(&[13, 24], &mut rng);
        let fmt = FpFormat::new(4, 3);
        let packed = PackedFpTensor::encode(&w, fmt);
        let fast = gemm_packed_fp(&a, &packed, None);
        let reference = a.matmul_nt(&fmt.quantize(&w));
        assert_eq!(fast.dims(), &[7, 13]);
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn packed_fp_gemm_with_act_quant_matches_double_fake_quant() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[5, 16], &mut rng);
        let w = Tensor::randn(&[6, 16], &mut rng);
        let wfmt = FpFormat::new(2, 1);
        let afmt = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let packed = PackedFpTensor::encode(&w, wfmt);
        let fast = gemm_packed_fp(&a, &packed, Some(&afmt));
        let reference = afmt.quantize(&a).matmul_nt(&wfmt.quantize(&w));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_int_gemm_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[4, 32], &mut rng);
        let w = Tensor::randn(&[9, 32], &mut rng);
        let fmt = IntFormat::fit(&w, 8);
        let packed = PackedIntTensor::encode(&w, fmt);
        let fast = gemm_packed_int(&a, &packed, None);
        let reference = a.matmul_nt(&fmt.quantize(&w));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_int_gemm_streams_odd_bitwidths() {
        // INT3/INT5 exercise the non-LUT generic decode inside the tiled
        // kernel (bit-level row streaming, still no densification).
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&[3, 21], &mut rng);
        let w = Tensor::randn(&[10, 21], &mut rng);
        for bits in [3u32, 5] {
            let fmt = IntFormat::fit(&w, bits);
            let packed = PackedIntTensor::encode(&w, fmt);
            let fast = gemm_packed_int(&a, &packed, None);
            let reference = a.matmul_nt(&fmt.quantize(&w));
            for (x, y) in fast.data().iter().zip(reference.data()) {
                assert!((x - y).abs() < 1e-4, "INT{bits}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn tiled_gemm_handles_edge_shapes() {
        // m/n/k off the register-block grid, single activation rows, tiny
        // k, and m spanning multiple activation blocks — every case must
        // agree with the dense reference.
        let mut rng = StdRng::seed_from_u64(3);
        let fmt = FpFormat::new(4, 3);
        for (m, n, k) in [
            (1usize, 1usize, 1usize),
            (1, 13, 24),
            (2, 3, 2),
            (3, 9, 3),
            (5, 7, 31),
            (4, 4, 4),
            (6, 17, 33),
            (9, 8, 128),
            (33, 31, 65),
            (70, 5, 9),
        ] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let w = Tensor::randn(&[n, k], &mut rng);
            let packed = PackedFpTensor::encode(&w, fmt);
            let fast = gemm_packed_fp(&a, &packed, None);
            let reference = a.matmul_nt(&fmt.quantize(&w));
            assert_eq!(fast.dims(), &[m, n]);
            for (i, (x, y)) in fast.data().iter().zip(reference.data()).enumerate() {
                assert!((x - y).abs() < 1e-3, "({m},{n},{k}) elem {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn degenerate_shapes_produce_empty_or_zero_outputs() {
        // m == 0 / k == 0 / n == 0 must not slice past the packed payload
        // — both the packed GEMM and the dense matmul_nt return the
        // well-defined empty-sum result.
        let fmt = FpFormat::new(4, 3);
        for (m, n, k) in [(0usize, 4usize, 3usize), (2, 0, 3), (2, 4, 0), (0, 0, 0)] {
            let a = Tensor::zeros(&[m, k]);
            let w = PackedFpTensor::encode(&Tensor::zeros(&[n, k]), fmt);
            let y = gemm_packed_fp(&a, &w, None);
            assert_eq!(y.dims(), &[m, n], "({m},{n},{k})");
            assert!(y.data().iter().all(|&v| v == 0.0));
            let dense = Tensor::zeros(&[m, k]).matmul_nt(&Tensor::zeros(&[n, k]));
            assert_eq!(dense.dims(), &[m, n]);
            let wa = gemm_packed_fp(&a, &w, Some(&TensorQuantizer::Fp(fmt)));
            assert_eq!(wa.dims(), &[m, n]);
        }
    }

    /// Reference for the fused path: fake-quantize the whole activation
    /// tensor first, then run the identical packed kernel without the
    /// fused quantizer.
    fn reference_wa(a: &Tensor, w: &PackedFpTensor, act: &TensorQuantizer) -> Tensor {
        gemm_packed_fp(&act.quantize(a), w, None)
    }

    #[test]
    fn fused_act_quant_is_bit_exact_with_prequantized_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[33, 40], &mut rng).mul_scalar(2.5);
        let w = Tensor::randn(&[19, 40], &mut rng);
        for wfmt in [FpFormat::new(4, 3), FpFormat::new(2, 1)] {
            let packed = PackedFpTensor::encode(&w, wfmt);
            for act in [
                TensorQuantizer::Fp(FpFormat::new(4, 3)),
                TensorQuantizer::Fp(FpFormat::new(2, 1)),
                TensorQuantizer::Int(IntFormat::fit(&a, 8)),
                TensorQuantizer::Int(IntFormat::fit(&a, 4)),
            ] {
                let fused = gemm_packed_fp(&a, &packed, Some(&act));
                let reference = reference_wa(&a, &packed, &act);
                for (i, (x, y)) in fused.data().iter().zip(reference.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{wfmt}/{act} elem {i}: {x} vs {y} not bit-exact"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_handles_nan_and_inf_activations() {
        // NaN maps through the boundary table exactly like the simulated
        // quantizer (to 0 for FP, the zero level for INT); ±∞ clip.
        let mut rng = StdRng::seed_from_u64(8);
        let mut vals: Vec<f32> = Tensor::randn(&[6 * 12], &mut rng).data().to_vec();
        vals[3] = f32::NAN;
        vals[17] = f32::INFINITY;
        vals[40] = f32::NEG_INFINITY;
        let a = Tensor::from_vec(vals, &[6, 12]);
        let w = Tensor::randn(&[5, 12], &mut rng);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        for act in [
            TensorQuantizer::Fp(FpFormat::new(4, 3)),
            TensorQuantizer::Int(IntFormat::from_range(8, -2.0, 2.0)),
        ] {
            let fused = gemm_packed_fp(&a, &packed, Some(&act));
            let reference = reference_wa(&a, &packed, &act);
            assert!(fused.data().iter().all(|v| v.is_finite()), "{act}: non-finite output");
            for (x, y) in fused.data().iter().zip(reference.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{act}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn per_channel_fused_matches_columnwise_prequantization() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (9usize, 6usize, 7usize);
        let a = Tensor::randn(&[m, k], &mut rng);
        let w = Tensor::randn(&[n, k], &mut rng);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(4, 3));
        // One distinct format per input feature (column).
        let formats: Vec<TensorQuantizer> = (0..k)
            .map(|j| {
                if j % 2 == 0 {
                    TensorQuantizer::Fp(FpFormat::with_bias(4, 3, 8.0 + j as f32 * 0.5))
                } else {
                    TensorQuantizer::Int(IntFormat::from_range(8, -1.0 - j as f32, 1.0 + j as f32))
                }
            })
            .collect();
        let pq = PanelQuantizer::per_channel(&formats);
        let fused = gemm_packed_fused(&a, &packed, Some(&pq));
        // Reference: quantize each column with its own format, then the
        // identical kernel without fusion.
        let mut aq = a.clone();
        for i in 0..m {
            for (j, fmt) in formats.iter().enumerate() {
                let v = Tensor::from_vec(vec![a.data()[i * k + j]], &[1]);
                aq.data_mut()[i * k + j] = fmt.quantize(&v).data()[0];
            }
        }
        let reference = gemm_packed_fused(&aq, &packed, None);
        for (i, (x, y)) in fused.data().iter().zip(reference.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn multithreaded_output_is_bit_identical_to_single_threaded() {
        // The kernel accumulates every output element in plain k order in
        // every code path, so the thread count must not change a single
        // bit. FPDQ_THREADS is process-wide and cached; emulate the
        // single-thread schedule by running the serial body directly.
        let mut rng = StdRng::seed_from_u64(10);
        let a = Tensor::randn(&[37, 48], &mut rng);
        let w = Tensor::randn(&[29, 48], &mut rng);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let packed = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
        let threaded = gemm_packed_fp(&a, &packed, Some(&act));
        // Reference schedule: one tile at a time via a 1-row-chunk sweep.
        let reference = {
            let aq = act.quantize(&a);
            let mut bp = vec![0.0f32; 48 * NT_NR];
            let mut wrow = vec![0.0f32; 48];
            let mut out = vec![0.0f32; 37 * 29];
            for j0 in (0..37).step_by(NT_NR) {
                let nw = NT_NR.min(37 - j0);
                pack_nt_panel(&aq.data()[j0 * 48..(j0 + nw) * 48], 48, nw, &mut bp);
                for r in 0..29 {
                    packed.decode_range_into(r * 48, &mut wrow);
                    let mut crow = vec![0.0f32; 37];
                    crow.copy_from_slice(&out[r * 37..(r + 1) * 37]);
                    gemm_nt_panel_as(simd::active(), &wrow, &bp, &mut crow, 1, 48, 37, j0, nw);
                    out[r * 37..(r + 1) * 37].copy_from_slice(&crow);
                }
            }
            Tensor::from_vec(out, &[29, 37]).transpose()
        };
        assert!(num_threads() >= 1);
        for (i, (x, y)) in threaded.data().iter().zip(reference.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "elem {i}: schedule changed the bits");
        }
    }

    #[test]
    fn row_and_col_regimes_are_bit_identical_across_worker_counts() {
        // Two shapes pin both regimes: m = 24 stays weight-stationary
        // (row-parallel) at every worker count, m = 64 over a narrow
        // n = 8 layer is activation-stationary (column-parallel) — and
        // in each regime every worker count must produce the same bits.
        use crate::schedule::{pick_gemm_regime, GemmRegime};
        let mut rng = StdRng::seed_from_u64(21);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let pq = PanelQuantizer::per_tensor(&act);
        assert_eq!(pick_gemm_regime(24, 32, 8), GemmRegime::RowParallel);
        assert_eq!(pick_gemm_regime(64, 8, 1), GemmRegime::ColParallel);
        for (m, n) in [(24usize, 32usize), (64, 8)] {
            let a = Tensor::randn(&[m, 24], &mut rng).mul_scalar(2.0);
            let w = Tensor::randn(&[n, 24], &mut rng);
            let packed = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
            let want = gemm_packed_fused_in(&a, &packed, Some(&pq), simd::active(), 1);
            // The reference matmul pins cross-regime identity too.
            let dense = act.quantize(&a).matmul_nt(&FpFormat::new(2, 1).quantize(&w));
            for (x, y) in want.data().iter().zip(dense.data()) {
                assert!((x - y).abs() < 1e-4, "({m},{n}): {x} vs {y}");
            }
            for workers in [2usize, 3, 8, 16] {
                let got = gemm_packed_fused_in(&a, &packed, Some(&pq), simd::active(), workers);
                assert_eq!(got.dims(), want.dims());
                for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "({m},{n}) workers {workers} elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_rows_match_stacked_single_image_calls() {
        // The core batched-sampling contract at the GEMM level: an
        // [N·l, k] activation matrix must reproduce N independent [l, k]
        // calls row-for-row, bitwise, in both regimes.
        let mut rng = StdRng::seed_from_u64(22);
        let (l, k, n) = (16usize, 20usize, 6usize);
        let batch = 5usize;
        let a = Tensor::randn(&[batch * l, k], &mut rng);
        let w = Tensor::randn(&[n, k], &mut rng);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let pq = PanelQuantizer::per_tensor(&act);
        let packed = PackedFpTensor::encode(&w, FpFormat::new(2, 1));
        for workers in [1usize, 2, 8] {
            let full = gemm_packed_fused_in(&a, &packed, Some(&pq), simd::active(), workers);
            for img in 0..batch {
                let ai =
                    Tensor::from_vec(a.data()[img * l * k..(img + 1) * l * k].to_vec(), &[l, k]);
                let single = gemm_packed_fused_in(&ai, &packed, Some(&pq), simd::active(), workers);
                for (i, (x, y)) in full.data()[img * l * n..(img + 1) * l * n]
                    .iter()
                    .zip(single.data())
                    .enumerate()
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "img {img} workers {workers} elem {i}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn fused_wa_gemm_bit_exact_property(
            seed in 0u64..1000,
            m in 1usize..20,
            k in 1usize..24,
            n in 1usize..12,
            wpick in 0usize..4,
            apick in 0usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], &mut rng).mul_scalar(3.0);
            let w = Tensor::randn(&[n, k], &mut rng);
            let wfmt = [FpFormat::new(4, 3), FpFormat::new(2, 1),
                        FpFormat::new(5, 2), FpFormat::new(1, 2)][wpick];
            let act = match apick {
                0 => TensorQuantizer::Fp(FpFormat::new(4, 3)),
                1 => TensorQuantizer::Fp(FpFormat::new(2, 1)),
                2 => TensorQuantizer::Int(IntFormat::fit(&a, 8)),
                _ => TensorQuantizer::Int(IntFormat::fit(&a, 4)),
            };
            let packed = PackedFpTensor::encode(&w, wfmt);
            let fused = gemm_packed_fp(&a, &packed, Some(&act));
            let reference = reference_wa(&a, &packed, &act);
            for (x, y) in fused.data().iter().zip(reference.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let w = PackedFpTensor::encode(&Tensor::zeros(&[4, 5]), FpFormat::new(4, 3));
        gemm_packed_fp(&a, &w, None);
    }
}
