//! Dequantize-on-the-fly GEMM over packed weights.
//!
//! The execution pattern of weight-quantized inference on hardware without
//! native low-bit units: weights stream from memory in packed form (4-8×
//! less traffic than FP32) and are expanded to the accumulator type at the
//! register level. Activations can optionally be fake-quantized on entry,
//! making the kernel numerically identical to the simulated
//! weight+activation quantization used in the quality experiments.

use crate::packed::{PackedFpTensor, PackedIntTensor};
use fpdq_core::TensorQuantizer;
use fpdq_tensor::matmul::dot;
use fpdq_tensor::parallel::parallel_rows;
use fpdq_tensor::Tensor;

/// `a [m,k] × wᵀ [n,k] → [m,n]` with packed FP weights, optionally
/// fake-quantizing the activations with `act` first (the paper's
/// weight+activation configuration).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed_fp(a: &Tensor, w: &PackedFpTensor, act: Option<&TensorQuantizer>) -> Tensor {
    assert_eq!(a.ndim(), 2, "activations must be [m, k]");
    assert_eq!(w.dims().len(), 2, "weights must be [n, k]");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, wk) = (w.dims()[0], w.dims()[1]);
    assert_eq!(k, wk, "inner dims differ: {k} vs {wk}");
    let a_q = match act {
        Some(q) => q.quantize(a),
        None => a.clone(),
    };
    let mut out = vec![0.0f32; m * n];
    parallel_rows(&mut out, n, m, 4, |row_start, chunk| {
        // Parallelise over *weight rows*: decode each packed row once,
        // then dot it against every activation row.
        let mut wrow = vec![0.0f32; k];
        for (r, col) in chunk.chunks_mut(m).enumerate() {
            let j = row_start + r;
            w.decode_row(j, &mut wrow);
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = dot(&a_q.data()[i * k..(i + 1) * k], &wrow);
            }
        }
    });
    // `out` is laid out [n, m]; transpose to [m, n].
    Tensor::from_vec(out, &[n, m]).transpose()
}

/// `a [m,k] × wᵀ [n,k] → [m,n]` with packed INT weights.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gemm_packed_int(a: &Tensor, w: &PackedIntTensor, act: Option<&TensorQuantizer>) -> Tensor {
    assert_eq!(a.ndim(), 2, "activations must be [m, k]");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, wk) = (w.dims()[0], w.dims()[1]);
    assert_eq!(k, wk, "inner dims differ: {k} vs {wk}");
    let a_q = match act {
        Some(q) => q.quantize(a),
        None => a.clone(),
    };
    let dense = w.decode();
    let mut out = vec![0.0f32; m * n];
    parallel_rows(&mut out, m, n, 4, |row_start, chunk| {
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let arow = &a_q.data()[(row_start + r) * k..(row_start + r + 1) * k];
            for (j, slot) in orow.iter_mut().enumerate() {
                *slot = dot(arow, &dense.data()[j * k..(j + 1) * k]);
            }
        }
    });
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_fp_gemm_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[7, 24], &mut rng);
        let w = Tensor::randn(&[13, 24], &mut rng);
        let fmt = FpFormat::new(4, 3);
        let packed = PackedFpTensor::encode(&w, fmt);
        let fast = gemm_packed_fp(&a, &packed, None);
        let reference = a.matmul_nt(&fmt.quantize(&w));
        assert_eq!(fast.dims(), &[7, 13]);
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn packed_fp_gemm_with_act_quant_matches_double_fake_quant() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[5, 16], &mut rng);
        let w = Tensor::randn(&[6, 16], &mut rng);
        let wfmt = FpFormat::new(2, 1);
        let afmt = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let packed = PackedFpTensor::encode(&w, wfmt);
        let fast = gemm_packed_fp(&a, &packed, Some(&afmt));
        let reference = afmt.quantize(&a).matmul_nt(&wfmt.quantize(&w));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_int_gemm_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[4, 32], &mut rng);
        let w = Tensor::randn(&[9, 32], &mut rng);
        let fmt = IntFormat::fit(&w, 8);
        let packed = PackedIntTensor::encode(&w, fmt);
        let fast = gemm_packed_int(&a, &packed, None);
        let reference = a.matmul_nt(&fmt.quantize(&w));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let w = PackedFpTensor::encode(&Tensor::zeros(&[4, 5]), FpFormat::new(4, 3));
        gemm_packed_fp(&a, &w, None);
    }
}
