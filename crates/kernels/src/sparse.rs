//! Sparsity-exploiting weight formats and kernels (paper §VI-G).
//!
//! The paper's quantizer multiplies weight sparsity by 20-620×; these
//! kernels turn that into skipped work: an unstructured compressed-row
//! format ([`CsrWeights`]) whose GEMM cost scales with the non-zero count,
//! and NVIDIA-style structured 2:4 pruning ([`TwoFourWeights`]) with 2-bit
//! position metadata — the paper's "future work" direction.

use fpdq_tensor::parallel::parallel_rows;
use fpdq_tensor::Tensor;

/// Compressed sparse rows over a `[n, k]` weight matrix.
#[derive(Clone, Debug)]
pub struct CsrWeights {
    n: usize,
    k: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrWeights {
    /// Builds CSR from a dense `[n, k]` matrix (exact zeros are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D.
    pub fn from_dense(w: &Tensor) -> Self {
        assert_eq!(w.ndim(), 2, "CSR weights must be a matrix");
        let (n, k) = (w.dim(0), w.dim(1));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            for j in 0..k {
                let v = w.data()[i * k + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrWeights { n, k, row_ptr, col_idx, values }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zeros skipped (0.0 for an empty matrix).
    pub fn sparsity(&self) -> f32 {
        if self.n * self.k == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f32 / (self.n * self.k) as f32
    }

    /// Storage bytes (values + column indices + row pointers).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 8
    }

    /// `a [m,k] × selfᵀ → [m,n]`, touching only non-zero weights.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn gemm(&self, a: &Tensor) -> Tensor {
        assert_eq!(a.ndim(), 2, "activations must be [m, k]");
        let (m, k) = (a.dim(0), a.dim(1));
        assert_eq!(k, self.k, "inner dims differ: {k} vs {}", self.k);
        // Degenerate shapes: an empty activation batch or a zero-row weight
        // matrix has an empty (but well-shaped) product; the row-chunked
        // parallel sweep below cannot represent zero-width rows
        // (`chunks_mut(0)` panics), so return early — mirroring the packed
        // GEMM's m==0/k==0 guards.
        if m == 0 || self.n == 0 {
            return Tensor::from_vec(Vec::new(), &[m, self.n]);
        }
        let mut out = vec![0.0f32; m * self.n];
        let n = self.n;
        parallel_rows(&mut out, m, n, 4, |row_start, chunk| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let arow = &a.data()[(row_start + r) * k..(row_start + r + 1) * k];
                for (j, slot) in orow.iter_mut().enumerate() {
                    let (s, e) = (self.row_ptr[j], self.row_ptr[j + 1]);
                    let mut acc = 0.0f32;
                    for idx in s..e {
                        acc += arow[self.col_idx[idx] as usize] * self.values[idx];
                    }
                    *slot = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, self.n])
    }
}

/// Structured 2:4 sparsity: within every group of 4 consecutive weights,
/// only the 2 largest-magnitude survive; positions are stored as 2-bit
/// metadata (the hardware pattern of NVIDIA sparse tensor cores).
#[derive(Clone, Debug)]
pub struct TwoFourWeights {
    n: usize,
    k: usize,
    /// Two surviving values per group of 4.
    values: Vec<f32>,
    /// Two 2-bit positions per group, packed one byte per group.
    positions: Vec<u8>,
}

impl TwoFourWeights {
    /// Prunes a dense `[n, k]` matrix to 2:4 structure.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is a multiple of 4.
    pub fn prune(w: &Tensor) -> Self {
        assert_eq!(w.ndim(), 2, "2:4 weights must be a matrix");
        let (n, k) = (w.dim(0), w.dim(1));
        assert_eq!(k % 4, 0, "2:4 pruning needs k divisible by 4, got {k}");
        let groups = n * k / 4;
        let mut values = Vec::with_capacity(groups * 2);
        let mut positions = Vec::with_capacity(groups);
        for g in 0..groups {
            let base = g * 4;
            let quad = &w.data()[base..base + 4];
            // Pick the two largest magnitudes (stable order).
            let mut idx = [0usize, 1, 2, 3];
            idx.sort_by(|&a, &b| quad[b].abs().total_cmp(&quad[a].abs()));
            let mut keep = [idx[0], idx[1]];
            keep.sort_unstable();
            values.push(quad[keep[0]]);
            values.push(quad[keep[1]]);
            positions.push((keep[0] as u8) | ((keep[1] as u8) << 2));
        }
        TwoFourWeights { n, k, values, positions }
    }

    /// Reconstructs the dense pruned matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.n * self.k];
        for (g, &meta) in self.positions.iter().enumerate() {
            let base = g * 4;
            let p0 = (meta & 0b11) as usize;
            let p1 = ((meta >> 2) & 0b11) as usize;
            data[base + p0] = self.values[g * 2];
            data[base + p1] = self.values[g * 2 + 1];
        }
        Tensor::from_vec(data, &[self.n, self.k])
    }

    /// Storage bytes: half the values + 1 metadata byte per group.
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 4 + self.positions.len()
    }

    /// Relative Frobenius error introduced by pruning (0.0 for an empty
    /// matrix, which pruning cannot perturb).
    pub fn pruning_error(&self, original: &Tensor) -> f32 {
        if original.numel() == 0 {
            return 0.0;
        }
        let dense = self.to_dense();
        (dense.mse(original) * original.numel() as f32).sqrt()
            / (original.data().iter().map(|v| v * v).sum::<f32>().sqrt() + 1e-12)
    }

    /// `a [m,k] × selfᵀ → [m,n]` over the pruned structure (2 MACs per
    /// group instead of 4).
    pub fn gemm(&self, a: &Tensor) -> Tensor {
        assert_eq!(a.ndim(), 2, "activations must be [m, k]");
        let (m, k) = (a.dim(0), a.dim(1));
        assert_eq!(k, self.k, "inner dims differ");
        // Same degenerate-shape guard as [`CsrWeights::gemm`]: zero-width
        // output rows would panic the chunked sweep.
        if m == 0 || self.n == 0 {
            return Tensor::from_vec(Vec::new(), &[m, self.n]);
        }
        let groups_per_row = self.k / 4;
        let mut out = vec![0.0f32; m * self.n];
        let n = self.n;
        parallel_rows(&mut out, m, n, 4, |row_start, chunk| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let arow = &a.data()[(row_start + r) * k..(row_start + r + 1) * k];
                for (j, slot) in orow.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for g in 0..groups_per_row {
                        let gi = j * groups_per_row + g;
                        let meta = self.positions[gi];
                        let base = g * 4;
                        acc += arow[base + (meta & 0b11) as usize] * self.values[gi * 2];
                        acc += arow[base + ((meta >> 2) & 0b11) as usize] * self.values[gi * 2 + 1];
                    }
                    *slot = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, self.n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_matrix(n: usize, k: usize, keep: f32, rng: &mut StdRng) -> Tensor {
        Tensor::randn(&[n, k], rng).zip_map(
            &Tensor::rand_uniform(&[n, k], 0.0, 1.0, rng),
            |v, u| if u < keep { v } else { 0.0 },
        )
    }

    #[test]
    fn csr_gemm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = sparse_matrix(9, 16, 0.3, &mut rng);
        let a = Tensor::randn(&[5, 16], &mut rng);
        let csr = CsrWeights::from_dense(&w);
        let fast = csr.gemm(&a);
        let reference = a.matmul_nt(&w);
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        assert!(csr.sparsity() > 0.5, "sparsity {}", csr.sparsity());
    }

    #[test]
    fn csr_payload_shrinks_with_sparsity() {
        let mut rng = StdRng::seed_from_u64(1);
        let dense_bytes = 64 * 64 * 4;
        let very_sparse = CsrWeights::from_dense(&sparse_matrix(64, 64, 0.05, &mut rng));
        assert!(
            very_sparse.payload_bytes() < dense_bytes / 2,
            "{} vs dense {dense_bytes}",
            very_sparse.payload_bytes()
        );
    }

    #[test]
    fn two_four_keeps_exactly_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Tensor::randn(&[8, 16], &mut rng);
        let pruned = TwoFourWeights::prune(&w).to_dense();
        let zeros = pruned.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 8 * 16 / 2);
        // Within each quad exactly 2 survive.
        for quad in pruned.data().chunks(4) {
            assert_eq!(quad.iter().filter(|&&v| v != 0.0).count(), 2);
        }
    }

    #[test]
    fn two_four_keeps_largest_magnitudes() {
        let w = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[1, 4]);
        let pruned = TwoFourWeights::prune(&w).to_dense();
        assert_eq!(pruned.data(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn two_four_gemm_matches_dense_of_pruned() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[6, 20], &mut rng);
        let a = Tensor::randn(&[4, 20], &mut rng);
        let tf = TwoFourWeights::prune(&w);
        let fast = tf.gemm(&a);
        let reference = a.matmul_nt(&tf.to_dense());
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn two_four_payload_is_roughly_half_plus_metadata() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::randn(&[32, 32], &mut rng);
        let tf = TwoFourWeights::prune(&w);
        let dense_bytes = 32 * 32 * 4;
        // values: half the elements ×4 B; metadata: 1 B per 4 elements.
        assert_eq!(tf.payload_bytes(), dense_bytes / 2 + 32 * 32 / 4);
    }

    #[test]
    fn degenerate_sparse_shapes_are_panic_free() {
        let mut rng = StdRng::seed_from_u64(6);

        // Zero-row weights: [m, 0] product, no panic from zero-width rows.
        let csr = CsrWeights::from_dense(&Tensor::from_vec(Vec::new(), &[0, 8]));
        let out = csr.gemm(&Tensor::randn(&[3, 8], &mut rng));
        assert_eq!(out.dims(), &[3, 0]);
        assert!(out.data().is_empty());
        assert_eq!(csr.sparsity(), 0.0);
        assert_eq!(csr.nnz(), 0);

        // Empty activation batch against real weights.
        let w = sparse_matrix(5, 8, 0.5, &mut rng);
        let csr = CsrWeights::from_dense(&w);
        let out = csr.gemm(&Tensor::from_vec(Vec::new(), &[0, 8]));
        assert_eq!(out.dims(), &[0, 5]);

        // k == 0: every dot product is an empty reduction (all zeros).
        let csr = CsrWeights::from_dense(&Tensor::from_vec(Vec::new(), &[4, 0]));
        let out = csr.gemm(&Tensor::from_vec(Vec::new(), &[2, 0]));
        assert_eq!(out.dims(), &[2, 4]);
        assert!(out.data().iter().all(|&v| v == 0.0));

        // The same sweep through the 2:4 structured path.
        let tf = TwoFourWeights::prune(&Tensor::from_vec(Vec::new(), &[0, 8]));
        let out = tf.gemm(&Tensor::randn(&[3, 8], &mut rng));
        assert_eq!(out.dims(), &[3, 0]);
        assert_eq!(tf.to_dense().dims(), &[0, 8]);
        assert_eq!(tf.pruning_error(&Tensor::from_vec(Vec::new(), &[0, 8])), 0.0);

        let tf = TwoFourWeights::prune(&Tensor::randn(&[5, 8], &mut rng));
        let out = tf.gemm(&Tensor::from_vec(Vec::new(), &[0, 8]));
        assert_eq!(out.dims(), &[0, 5]);

        let empty = Tensor::from_vec(Vec::new(), &[3, 0]);
        let tf = TwoFourWeights::prune(&empty);
        let out = tf.gemm(&Tensor::from_vec(Vec::new(), &[2, 0]));
        assert_eq!(out.dims(), &[2, 3]);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pruning_error_small_when_half_already_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        // With ≥ half of each quad zero, 2:4 pruning is (near) lossless.
        let w = Tensor::randn(&[4, 16], &mut rng).map(|v| if v.abs() < 0.6 { 0.0 } else { v });
        let tf = TwoFourWeights::prune(&w);
        // Quads with >2 nonzeros exist occasionally; allow small error.
        assert!(tf.pruning_error(&w) < 0.35, "error {}", tf.pruning_error(&w));
    }
}
