//! Panel-packed sparse weight formats and kernels (paper §VI-G).
//!
//! The paper's quantizer multiplies weight sparsity by 20-620×; this
//! module turns that into *skipped work at dense-engine standards* instead
//! of a scalar side path. Two formats share one execution architecture:
//!
//! * [`CsrWeights`] — unstructured compressed rows over the zeros the
//!   quantizer creates: per weight row, sorted column indices plus the
//!   surviving values stored as packed quantized codes (FP4/FP8/INT4/INT8
//!   through the same LUT decode as [`crate::packed`]).
//! * [`TwoFourWeights`] — NVIDIA-style structured 2:4 pruning: within
//!   every group of 4 consecutive weights only the 2 largest-magnitude
//!   survive; the survivors are stored as packed quantized codes and
//!   their in-group positions as 2-bit metadata (1 byte per group).
//!
//! # Execution architecture
//!
//! Both formats run the dense packed GEMM's row-parallel schedule
//! ([`crate::gemm`]): the activation rows are quantized (optionally, via
//! the fused boundary-table [`PanelQuantizer`]) and interleaved into the
//! shared `[k][NT_NR]` panel bank exactly once per call, then workers
//! split the weight rows. The difference is the inner kernel: instead of
//! streaming every `k` step, [`sparse_row_accum_as`] walks only the
//! stored non-zeros — one broadcast-multiply-add against the panel's
//! 8-lane column stripe per stored value — with the same
//! ascending-stored-order accumulation in every ISA path (AVX2/NEON are
//! bit-identical to the scalar walk; no FMA, same operand order; see
//! [`fpdq_tensor::simd`]). The 2:4 kernel expands its 2-bit metadata to
//! column indices in-register; the CSR kernel reads its sorted index
//! array directly. Weight values decode through the packed LUT in
//! 8-row tiles, exactly like the dense GEMM.
//!
//! # Crossover dispatch
//!
//! Every GEMM entry point first consults
//! [`crate::schedule::pick_sparse_regime`]: above the measured density
//! crossover the call is handed to the *dense* packed GEMM — both types
//! implement [`PackedWeights`], so the dense engine streams their
//! scatter-decode like any packed tensor — which means installing a
//! sparse format can never make a layer slower than the packed dense
//! path it replaces. The regime depends only on density and structure
//! (never on worker count or ISA), so outputs stay bit-identical across
//! `FPDQ_THREADS` and forced-scalar runs.
//!
//! The byte-level layout contract (metadata encoding, index ordering,
//! accumulation-order guarantee) is documented in `docs/sparse.md`.

use crate::gemm::{gemm_packed_fused_in, pack_act_panels};
use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use crate::schedule::{pick_sparse_regime, SparseRegime};
use fpdq_core::{PanelQuantizer, TensorQuantizer};
use fpdq_tensor::matmul::NT_NR;
use fpdq_tensor::parallel::{num_threads, parallel_rows_in};
use fpdq_tensor::simd::{self, Isa};
use fpdq_tensor::{FpdqError, Tensor};

/// Weight rows decoded per scratch refill in the sparse row sweep — the
/// same decode-amortisation grain as the dense GEMM's weight tiles.
const WTILE_ROWS: usize = 8;

/// Quantized storage of the surviving sparse values: the same packed
/// code streams (and LUT decode) as the dense engine, behind one face.
#[derive(Clone, Debug)]
enum SparseValues {
    Fp(PackedFpTensor),
    Int(PackedIntTensor),
}

impl SparseValues {
    fn encode(x: &Tensor, format: &TensorQuantizer) -> Self {
        match format {
            TensorQuantizer::Fp(f) => SparseValues::Fp(PackedFpTensor::encode(x, *f)),
            TensorQuantizer::Int(f) => SparseValues::Int(PackedIntTensor::encode(x, *f)),
        }
    }

    fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        match self {
            SparseValues::Fp(p) => p.decode_range_into_as(isa, start, out),
            SparseValues::Int(p) => p.decode_range_into_as(isa, start, out),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            SparseValues::Fp(p) => p.payload_bytes(),
            SparseValues::Int(p) => p.payload_bytes(),
        }
    }

    fn format(&self) -> TensorQuantizer {
        match self {
            SparseValues::Fp(p) => TensorQuantizer::Fp(p.format()),
            SparseValues::Int(p) => TensorQuantizer::Int(p.format()),
        }
    }

    fn numel(&self) -> usize {
        match self {
            SparseValues::Fp(p) => p.numel(),
            SparseValues::Int(p) => p.numel(),
        }
    }
}

/// Compressed sparse rows over a `[n, k]` weight matrix with quantized
/// packed values.
#[derive(Clone, Debug)]
pub struct CsrWeights {
    n: usize,
    k: usize,
    dims: [usize; 2],
    row_ptr: Vec<usize>,
    /// Column indices per stored value, ascending within each row.
    col_idx: Vec<u32>,
    /// Packed codes of the stored values, `[nnz]`, row-major.
    values: SparseValues,
}

impl CsrWeights {
    /// Builds CSR from a dense `[n, k]` matrix: the weights are quantized
    /// with `format` and the exact zeros of the *quantized* matrix are
    /// dropped; survivors are stored as packed codes (bit-exact with the
    /// quantized dense matrix, since encode∘quantize is idempotent).
    ///
    /// Returns [`FpdqError::InvalidArgument`] when `w` is not 2-D.
    pub fn try_from_dense(w: &Tensor, format: &TensorQuantizer) -> Result<Self, FpdqError> {
        if w.ndim() != 2 {
            return Err(FpdqError::invalid(format!(
                "CSR weights must be a matrix, got {}",
                w.shape()
            )));
        }
        let (n, k) = (w.dim(0), w.dim(1));
        let q = format.quantize(w);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut kept = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            for j in 0..k {
                let v = q.data()[i * k + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    kept.push(v);
                }
            }
            row_ptr.push(kept.len());
        }
        let nnz = kept.len();
        let values = SparseValues::encode(&Tensor::from_vec(kept, &[nnz]), format);
        Ok(CsrWeights { n, k, dims: [n, k], row_ptr, col_idx, values })
    }

    /// Panicking convenience wrapper over [`Self::try_from_dense`].
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D.
    pub fn from_dense(w: &Tensor, format: &TensorQuantizer) -> Self {
        match Self::try_from_dense(w, format) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of zeros skipped (0.0 for an empty matrix).
    pub fn sparsity(&self) -> f32 {
        if self.n * self.k == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f32 / (self.n * self.k) as f32
    }

    /// Quantized format of the stored values.
    pub fn format(&self) -> TensorQuantizer {
        self.values.format()
    }

    /// Storage bytes (packed values + column indices + row pointers).
    pub fn payload_bytes(&self) -> usize {
        self.values.payload_bytes() + self.col_idx.len() * 4 + self.row_ptr.len() * 8
    }

    /// Reconstructs the dense quantized matrix (bit-exact with
    /// `format.quantize(w)` of the construction input).
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.n * self.k];
        if !data.is_empty() {
            self.decode_range_into(0, &mut data);
        }
        Tensor::from_vec(data, &[self.n, self.k])
    }

    /// Relative Frobenius error of the stored matrix against `original`
    /// (0.0 when construction only dropped exact zeros — the CSR case
    /// against the already-quantized weights).
    pub fn pruning_error(&self, original: &Tensor) -> f32 {
        relative_frobenius_error(&self.to_dense(), original)
    }

    /// `a [m,k] × selfᵀ → [m,n]`, touching only stored non-zeros (or the
    /// dense packed GEMM above the density crossover).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn gemm(&self, a: &Tensor) -> Tensor {
        self.gemm_fused(a, None)
    }

    /// [`Self::gemm`] with the activation quantizer fused into the panel
    /// pack, exactly like [`crate::gemm::gemm_packed_fused`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, or if a per-channel quantizer's
    /// channel count differs from `k`.
    pub fn gemm_fused(&self, a: &Tensor, act: Option<&PanelQuantizer>) -> Tensor {
        self.gemm_fused_as(a, act, simd::active())
    }

    /// [`Self::gemm_fused`] on an explicit ISA path — bit-identical
    /// across ISAs; an unsupported `isa` falls back to scalar.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, or if a per-channel quantizer's
    /// channel count differs from `k`.
    pub fn gemm_fused_as(&self, a: &Tensor, act: Option<&PanelQuantizer>, isa: Isa) -> Tensor {
        self.gemm_fused_in(a, act, isa, num_threads())
    }

    /// [`Self::gemm_fused_as`] with an explicit worker count — results
    /// are bit-identical for every worker count.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, or if a per-channel quantizer's
    /// channel count differs from `k`.
    pub fn gemm_fused_in(
        &self,
        a: &Tensor,
        act: Option<&PanelQuantizer>,
        isa: Isa,
        workers: usize,
    ) -> Tensor {
        if let Some(t) = sparse_entry_guard(a, self.n, self.k, act) {
            return t;
        }
        if pick_sparse_regime(self.nnz(), a.dim(0), self.n, self.k, false) == SparseRegime::Dense {
            return gemm_packed_fused_in(a, self, act, isa, workers);
        }
        let (m, k) = (a.dim(0), a.dim(1));
        sparse_row_parallel(a, act, isa, workers, self.n, |r0, chunk, panels| {
            let mut vals: Vec<f32> = Vec::new();
            for (r, orow) in chunk.chunks_mut(m).enumerate() {
                let (s, e) = (self.row_ptr[r0 + r], self.row_ptr[r0 + r + 1]);
                if vals.len() < e - s {
                    vals.resize(e - s, 0.0);
                }
                self.values.decode_range_into_as(isa, s, &mut vals[..e - s]);
                sparse_row_accum_as(isa, &vals[..e - s], &self.col_idx[s..e], panels, k, m, orow);
            }
        })
    }
}

impl PackedWeights for CsrWeights {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Scatter-decode: zero-fill, then place each stored value at its
    /// column — the dense engine streams a CSR matrix through this when
    /// the crossover picks the dense regime.
    fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        out.fill(0.0);
        if out.is_empty() || self.k == 0 {
            return;
        }
        let end = start + out.len();
        let (r0, r1) = (start / self.k, (end - 1) / self.k);
        let mut vals: Vec<f32> = Vec::new();
        for r in r0..=r1 {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if e == s {
                continue;
            }
            if vals.len() < e - s {
                vals.resize(e - s, 0.0);
            }
            self.values.decode_range_into_as(isa, s, &mut vals[..e - s]);
            for (t, &c) in self.col_idx[s..e].iter().enumerate() {
                let idx = r * self.k + c as usize;
                if idx >= start && idx < end {
                    out[idx - start] = vals[t];
                }
            }
        }
    }
}

/// Structured 2:4 sparsity: within every group of 4 consecutive weights,
/// only the 2 largest-magnitude survive; survivors are stored as packed
/// quantized codes (prune-then-quantize) and positions as 2-bit metadata
/// (the hardware pattern of NVIDIA sparse tensor cores).
#[derive(Clone, Debug)]
pub struct TwoFourWeights {
    n: usize,
    k: usize,
    dims: [usize; 2],
    /// Packed codes of the two survivors per group, `[n, k/2]` row-major.
    values: SparseValues,
    /// Two 2-bit in-group positions per group (`p0 | p1 << 2`, `p0 < p1`),
    /// one byte per group, `n·k/4` bytes row-major.
    positions: Vec<u8>,
    /// Stored values that decode non-zero (for [`Self::sparsity`]).
    nonzero: usize,
}

impl TwoFourWeights {
    /// Prunes a dense `[n, k]` matrix to 2:4 structure on the *raw*
    /// magnitudes, then quantizes the survivors with `format`
    /// (prune-then-quantize, the order of the paper's fig. 11 ablation).
    ///
    /// Returns [`FpdqError::InvalidArgument`] when `w` is not 2-D or `k`
    /// is not a multiple of 4.
    pub fn try_prune(w: &Tensor, format: &TensorQuantizer) -> Result<Self, FpdqError> {
        if w.ndim() != 2 {
            return Err(FpdqError::invalid(format!(
                "2:4 weights must be a matrix, got {}",
                w.shape()
            )));
        }
        let (n, k) = (w.dim(0), w.dim(1));
        if k % 4 != 0 {
            return Err(FpdqError::invalid(format!("2:4 pruning needs k divisible by 4, got {k}")));
        }
        let groups = n * k / 4;
        let mut kept = Vec::with_capacity(groups * 2);
        let mut positions = Vec::with_capacity(groups);
        for g in 0..groups {
            let quad = &w.data()[g * 4..g * 4 + 4];
            // Pick the two largest magnitudes (stable order).
            let mut idx = [0usize, 1, 2, 3];
            idx.sort_by(|&a, &b| quad[b].abs().total_cmp(&quad[a].abs()));
            let mut keep = [idx[0], idx[1]];
            keep.sort_unstable();
            kept.push(quad[keep[0]]);
            kept.push(quad[keep[1]]);
            positions.push((keep[0] as u8) | ((keep[1] as u8) << 2));
        }
        let values = SparseValues::encode(&Tensor::from_vec(kept, &[n, k / 2]), format);
        let mut decoded = vec![0.0f32; groups * 2];
        if !decoded.is_empty() {
            values.decode_range_into_as(simd::active(), 0, &mut decoded);
        }
        let nonzero = decoded.iter().filter(|&&v| v != 0.0).count();
        Ok(TwoFourWeights { n, k, dims: [n, k], values, positions, nonzero })
    }

    /// Panicking convenience wrapper over [`Self::try_prune`].
    ///
    /// # Panics
    ///
    /// Panics unless `w` is 2-D with `k` a multiple of 4.
    pub fn prune(w: &Tensor, format: &TensorQuantizer) -> Self {
        match Self::try_prune(w, format) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Stored values per row (`k/2`).
    fn row_values(&self) -> usize {
        self.k / 2
    }

    /// Number of *stored* values (`n·k/2` — the work the kernel runs),
    /// whether or not they quantized to zero.
    pub fn stored(&self) -> usize {
        self.values.numel()
    }

    /// Number of stored values that decode non-zero.
    pub fn nnz(&self) -> usize {
        self.nonzero
    }

    /// Fraction of zeros in the decoded matrix — at least 0.5 by
    /// structure, more when survivors quantize to zero (0.0 for an empty
    /// matrix).
    pub fn sparsity(&self) -> f32 {
        if self.n * self.k == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f32 / (self.n * self.k) as f32
    }

    /// Quantized format of the stored values.
    pub fn format(&self) -> TensorQuantizer {
        self.values.format()
    }

    /// Storage bytes: packed codes for half the elements + 1 metadata
    /// byte per group of 4.
    pub fn payload_bytes(&self) -> usize {
        self.values.payload_bytes() + self.positions.len()
    }

    /// Reconstructs the dense pruned-and-quantized matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.n * self.k];
        if !data.is_empty() {
            self.decode_range_into(0, &mut data);
        }
        Tensor::from_vec(data, &[self.n, self.k])
    }

    /// Relative Frobenius error introduced by pruning + value
    /// quantization against `original` (0.0 for an empty matrix).
    pub fn pruning_error(&self, original: &Tensor) -> f32 {
        relative_frobenius_error(&self.to_dense(), original)
    }

    /// `a [m,k] × selfᵀ → [m,n]` over the pruned structure (2 stored
    /// values per group of 4 — or the dense packed GEMM above the
    /// structured crossover).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn gemm(&self, a: &Tensor) -> Tensor {
        self.gemm_fused(a, None)
    }

    /// [`Self::gemm`] with the activation quantizer fused into the panel
    /// pack, exactly like [`crate::gemm::gemm_packed_fused`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, or if a per-channel quantizer's
    /// channel count differs from `k`.
    pub fn gemm_fused(&self, a: &Tensor, act: Option<&PanelQuantizer>) -> Tensor {
        self.gemm_fused_as(a, act, simd::active())
    }

    /// [`Self::gemm_fused`] on an explicit ISA path — bit-identical
    /// across ISAs; an unsupported `isa` falls back to scalar.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, or if a per-channel quantizer's
    /// channel count differs from `k`.
    pub fn gemm_fused_as(&self, a: &Tensor, act: Option<&PanelQuantizer>, isa: Isa) -> Tensor {
        self.gemm_fused_in(a, act, isa, num_threads())
    }

    /// [`Self::gemm_fused_as`] with an explicit worker count — results
    /// are bit-identical for every worker count.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, or if a per-channel quantizer's
    /// channel count differs from `k`.
    pub fn gemm_fused_in(
        &self,
        a: &Tensor,
        act: Option<&PanelQuantizer>,
        isa: Isa,
        workers: usize,
    ) -> Tensor {
        if let Some(t) = sparse_entry_guard(a, self.n, self.k, act) {
            return t;
        }
        if pick_sparse_regime(self.stored(), a.dim(0), self.n, self.k, true) == SparseRegime::Dense
        {
            return gemm_packed_fused_in(a, self, act, isa, workers);
        }
        let (m, k) = (a.dim(0), a.dim(1));
        let half = self.row_values();
        let groups = self.k / 4;
        sparse_row_parallel(a, act, isa, workers, self.n, |r0, chunk, panels| {
            let rows = chunk.len() / m;
            // Per-worker scratch: decoded value tiles (amortised like the
            // dense GEMM's weight tiles) + the metadata-expanded column
            // indices of one row.
            let mut vals = vec![0.0f32; WTILE_ROWS * half];
            let mut cols = vec![0u32; half];
            let mut wt = 0;
            while wt < rows {
                let wh = WTILE_ROWS.min(rows - wt);
                self.values.decode_range_into_as(isa, (r0 + wt) * half, &mut vals[..wh * half]);
                for r in 0..wh {
                    let meta = &self.positions[(r0 + wt + r) * groups..(r0 + wt + r + 1) * groups];
                    for (g, &mb) in meta.iter().enumerate() {
                        cols[2 * g] = (4 * g) as u32 + u32::from(mb & 0b11);
                        cols[2 * g + 1] = (4 * g) as u32 + u32::from((mb >> 2) & 0b11);
                    }
                    sparse_row_accum_as(
                        isa,
                        &vals[r * half..(r + 1) * half],
                        &cols,
                        panels,
                        k,
                        m,
                        &mut chunk[(wt + r) * m..(wt + r + 1) * m],
                    );
                }
                wt += wh;
            }
        })
    }
}

impl PackedWeights for TwoFourWeights {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Scatter-decode through the 2-bit metadata — the dense engine
    /// streams a 2:4 matrix through this when the crossover picks the
    /// dense regime.
    fn decode_range_into_as(&self, isa: Isa, start: usize, out: &mut [f32]) {
        out.fill(0.0);
        if out.is_empty() || self.k == 0 {
            return;
        }
        let end = start + out.len();
        let (r0, r1) = (start / self.k, (end - 1) / self.k);
        let half = self.row_values();
        let groups = self.k / 4;
        let mut vals = vec![0.0f32; half];
        for r in r0..=r1 {
            self.values.decode_range_into_as(isa, r * half, &mut vals);
            for g in 0..groups {
                let meta = self.positions[r * groups + g];
                let pair = [
                    ((meta & 0b11) as usize, vals[2 * g]),
                    (((meta >> 2) & 0b11) as usize, vals[2 * g + 1]),
                ];
                for (p, v) in pair {
                    let idx = r * self.k + 4 * g + p;
                    if idx >= start && idx < end {
                        out[idx - start] = v;
                    }
                }
            }
        }
    }
}

/// Relative Frobenius error `‖got − want‖ / ‖want‖` (0.0 for empty).
fn relative_frobenius_error(got: &Tensor, want: &Tensor) -> f32 {
    if want.numel() == 0 {
        return 0.0;
    }
    (got.mse(want) * want.numel() as f32).sqrt()
        / (want.data().iter().map(|v| v * v).sum::<f32>().sqrt() + 1e-12)
}

/// Shared entry asserts + degenerate-shape guard of the sparse GEMM
/// chains (mirrors [`crate::gemm::gemm_packed_fused_in`]): returns the
/// empty-sum result for `m == 0 || n == 0 || k == 0`, `None` otherwise.
fn sparse_entry_guard(
    a: &Tensor,
    n: usize,
    k: usize,
    act: Option<&PanelQuantizer>,
) -> Option<Tensor> {
    assert_eq!(a.ndim(), 2, "activations must be [m, k]");
    let (m, ak) = (a.dim(0), a.dim(1));
    assert_eq!(ak, k, "inner dims differ: {ak} vs {k}");
    if let Some(pq) = act {
        assert!(
            pq.channels() == 1 || pq.channels() == k,
            "per-channel activation quantizer has {} channels for k = {k}",
            pq.channels()
        );
    }
    if m == 0 || n == 0 || k == 0 {
        return Some(Tensor::zeros(&[m, n]));
    }
    None
}

/// The row-parallel sparse schedule, shared by both formats: quantize +
/// interleave the activation rows into the `[k][NT_NR]` panel bank once
/// (in parallel, via the dense GEMM's [`pack_act_panels`]), then split
/// the weight rows across workers; `body(r0, chunk, panels)` fills output
/// rows `[r0, r0 + chunk.len()/m)` (each of length `m`). The `[n, m]`
/// buffer transposes once at the end, like the dense row-parallel path.
fn sparse_row_parallel<F>(
    a: &Tensor,
    act: Option<&PanelQuantizer>,
    isa: Isa,
    workers: usize,
    n: usize,
    body: F,
) -> Tensor
where
    F: Fn(usize, &mut [f32], &[f32]) + Sync,
{
    let (m, k) = (a.dim(0), a.dim(1));
    let ad = a.data();
    let mpanels = m.div_ceil(NT_NR);
    let mut panels = vec![0.0f32; mpanels * k * NT_NR];
    parallel_rows_in(workers, &mut panels, mpanels, k * NT_NR, 1, |p0, chunk| {
        pack_act_panels(ad, m, k, act, isa, p0, chunk);
    });
    let mut out = vec![0.0f32; n * m];
    parallel_rows_in(workers, &mut out, n, m, 4, |r0, chunk| body(r0, chunk, &panels));
    Tensor::from_vec(out, &[n, m]).transpose()
}

/// One weight row × the activation panel bank: accumulates
/// `out_row[j] += Σ_t vals[t] · a[j][cols[t]]` with the products taken in
/// ascending stored order `t` for every output element — the fixed
/// accumulation order that makes the SIMD paths bit-identical to this
/// scalar reference and the output independent of panel count, worker
/// split, and ISA.
///
/// `cols` holds *logical* column indices (`< k`, a constructor
/// invariant); the panel stride turns each into one contiguous 8-lane
/// stripe load.
///
/// # Panics
///
/// Panics on size mismatches. (Real asserts, not debug: the SIMD kernels
/// read through raw pointers, so the range invariants must hold in
/// release builds too; the checks are O(1) against the O(nnz·m) kernel.
/// Column bounds are the constructors' structural invariant and checked
/// in debug only.)
fn sparse_row_accum_as(
    isa: Isa,
    vals: &[f32],
    cols: &[u32],
    panels: &[f32],
    k: usize,
    m: usize,
    out_row: &mut [f32],
) {
    assert_eq!(vals.len(), cols.len(), "values/indices length mismatch");
    assert_eq!(out_row.len(), m, "output row length");
    assert_eq!(panels.len(), m.div_ceil(NT_NR) * k * NT_NR, "panel bank size");
    debug_assert!(cols.iter().all(|&c| (c as usize) < k), "column index past k");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if isa.is_supported() => {
            // Safety: AVX2 verified at runtime; slice sizes asserted
            // above, column indices < k by the constructors' invariant
            // (so every stripe load stays inside its panel).
            unsafe { avx2::sparse_row_accum(vals, cols, panels, k, m, out_row) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // Safety: NEON is baseline on aarch64; invariants as above.
            unsafe { neon::sparse_row_accum(vals, cols, panels, k, m, out_row) }
        }
        _ => sparse_row_accum_scalar(vals, cols, panels, k, m, out_row),
    }
}

/// The scalar reference of [`sparse_row_accum_as`] — the bit-identity
/// oracle the SIMD paths are pinned to.
fn sparse_row_accum_scalar(
    vals: &[f32],
    cols: &[u32],
    panels: &[f32],
    k: usize,
    m: usize,
    out_row: &mut [f32],
) {
    let stride = k * NT_NR;
    let mut p = 0;
    let mut j0 = 0;
    while j0 < m {
        let nw = NT_NR.min(m - j0);
        let panel = &panels[p * stride..(p + 1) * stride];
        let mut acc = [0.0f32; NT_NR];
        for (&v, &c) in vals.iter().zip(cols) {
            // Same per-element order as the SIMD kernels: (v * a) then
            // (acc + product), ascending stored index.
            let stripe = &panel[c as usize * NT_NR..(c as usize + 1) * NT_NR];
            for (slot, &av) in acc.iter_mut().zip(stripe) {
                *slot += v * av;
            }
        }
        out_row[j0..j0 + nw].copy_from_slice(&acc[..nw]);
        p += 1;
        j0 += NT_NR;
    }
}

/// AVX2 sparse row kernel: the 8-lane panel stripe of each stored column
/// loads whole into one 256-bit register; the main block runs *four*
/// panels at once — without fused multiply-adds the adds form one
/// latency-bound dependency chain per accumulator, and four independent
/// chains (sharing every broadcast value and index load) fill the FP add
/// ports. Panel blocking never changes the per-element accumulation
/// order, so bit-identity is unaffected. Deliberately `_mm256_mul_ps` +
/// `_mm256_add_ps`, **not** `_mm256_fmadd_ps`: FMA's single rounding
/// would break bit-identity with the scalar reference (see
/// [`fpdq_tensor::simd`]).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::NT_NR;
    use core::arch::x86_64::*;

    /// Panels per main block: 4 accumulators + one broadcast + one stripe
    /// load stay comfortably inside the 16 `ymm` registers.
    const P_BLOCK: usize = 4;

    /// # Safety
    ///
    /// Requires AVX2 at runtime; slice sizes per
    /// [`super::sparse_row_accum_as`], and every `cols` entry `< k`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sparse_row_accum(
        vals: &[f32],
        cols: &[u32],
        panels: &[f32],
        k: usize,
        m: usize,
        out_row: &mut [f32],
    ) {
        let pp = panels.as_ptr();
        let stride = k * NT_NR;
        let mut p = 0;
        let mut j0 = 0;
        while j0 + P_BLOCK * NT_NR <= m {
            let base: [*const f32; P_BLOCK] = core::array::from_fn(|i| pp.add((p + i) * stride));
            let mut acc = [_mm256_setzero_ps(); P_BLOCK];
            for (&v, &c) in vals.iter().zip(cols) {
                let av = _mm256_set1_ps(v);
                let off = c as usize * NT_NR;
                for (slot, b) in acc.iter_mut().zip(base) {
                    // Same per-element order as the scalar kernel:
                    // (v * a) then (acc + product), ascending stored t.
                    *slot = _mm256_add_ps(*slot, _mm256_mul_ps(av, _mm256_loadu_ps(b.add(off))));
                }
            }
            for (i, slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(out_row.as_mut_ptr().add(j0 + i * NT_NR), *slot);
            }
            p += P_BLOCK;
            j0 += P_BLOCK * NT_NR;
        }
        while j0 < m {
            let nw = NT_NR.min(m - j0);
            let b = pp.add(p * stride);
            let mut acc = _mm256_setzero_ps();
            for (&v, &c) in vals.iter().zip(cols) {
                let av = _mm256_set1_ps(v);
                acc = _mm256_add_ps(
                    acc,
                    _mm256_mul_ps(av, _mm256_loadu_ps(b.add(c as usize * NT_NR))),
                );
            }
            if nw == NT_NR {
                _mm256_storeu_ps(out_row.as_mut_ptr().add(j0), acc);
            } else {
                let mut tmp = [0.0f32; NT_NR];
                _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
                out_row[j0..j0 + nw].copy_from_slice(&tmp[..nw]);
            }
            p += 1;
            j0 += NT_NR;
        }
    }
}

/// NEON sparse row kernel: each 8-lane panel stripe is two 128-bit
/// halves; the main block runs four panels (eight live accumulators) to
/// hide the add latency. Deliberately `vmulq` + `vaddq`, **not**
/// `vfmaq`/`vmlaq`: FMA's single rounding would break bit-identity with
/// the scalar reference (see [`fpdq_tensor::simd`]).
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::NT_NR;
    use core::arch::aarch64::*;

    const P_BLOCK: usize = 4;

    /// # Safety
    ///
    /// NEON is baseline on aarch64; slice sizes per
    /// [`super::sparse_row_accum_as`], and every `cols` entry `< k`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sparse_row_accum(
        vals: &[f32],
        cols: &[u32],
        panels: &[f32],
        k: usize,
        m: usize,
        out_row: &mut [f32],
    ) {
        let pp = panels.as_ptr();
        let stride = k * NT_NR;
        let zero = vdupq_n_f32(0.0);
        let mut p = 0;
        let mut j0 = 0;
        while j0 + P_BLOCK * NT_NR <= m {
            let base: [*const f32; P_BLOCK] = core::array::from_fn(|i| pp.add((p + i) * stride));
            let mut acc = [[zero; 2]; P_BLOCK];
            for (&v, &c) in vals.iter().zip(cols) {
                let av = vdupq_n_f32(v);
                let off = c as usize * NT_NR;
                for (slot, b) in acc.iter_mut().zip(base) {
                    // Same per-element order as the scalar kernel:
                    // (v * a) then (acc + product), ascending stored t.
                    slot[0] = vaddq_f32(slot[0], vmulq_f32(av, vld1q_f32(b.add(off))));
                    slot[1] = vaddq_f32(slot[1], vmulq_f32(av, vld1q_f32(b.add(off + 4))));
                }
            }
            for (i, slot) in acc.iter().enumerate() {
                vst1q_f32(out_row.as_mut_ptr().add(j0 + i * NT_NR), slot[0]);
                vst1q_f32(out_row.as_mut_ptr().add(j0 + i * NT_NR + 4), slot[1]);
            }
            p += P_BLOCK;
            j0 += P_BLOCK * NT_NR;
        }
        while j0 < m {
            let nw = NT_NR.min(m - j0);
            let b = pp.add(p * stride);
            let mut acc = [zero; 2];
            for (&v, &c) in vals.iter().zip(cols) {
                let av = vdupq_n_f32(v);
                let off = c as usize * NT_NR;
                acc[0] = vaddq_f32(acc[0], vmulq_f32(av, vld1q_f32(b.add(off))));
                acc[1] = vaddq_f32(acc[1], vmulq_f32(av, vld1q_f32(b.add(off + 4))));
            }
            if nw == NT_NR {
                vst1q_f32(out_row.as_mut_ptr().add(j0), acc[0]);
                vst1q_f32(out_row.as_mut_ptr().add(j0 + 4), acc[1]);
            } else {
                let mut tmp = [0.0f32; NT_NR];
                vst1q_f32(tmp.as_mut_ptr(), acc[0]);
                vst1q_f32(tmp.as_mut_ptr().add(4), acc[1]);
                out_row[j0..j0 + nw].copy_from_slice(&tmp[..nw]);
            }
            p += 1;
            j0 += NT_NR;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::{FpFormat, IntFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp8() -> TensorQuantizer {
        TensorQuantizer::Fp(FpFormat::new(4, 3))
    }

    fn sparse_matrix(n: usize, k: usize, keep: f32, rng: &mut StdRng) -> Tensor {
        Tensor::randn(&[n, k], rng).zip_map(
            &Tensor::rand_uniform(&[n, k], 0.0, 1.0, rng),
            |v, u| if u < keep { v } else { 0.0 },
        )
    }

    fn assert_close(got: &Tensor, want: &Tensor, tol: f32, ctx: &str) {
        assert_eq!(got.dims(), want.dims(), "{ctx}: dims");
        for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
            assert!((x - y).abs() < tol, "{ctx} elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn csr_gemm_matches_dense_of_quantized() {
        let mut rng = StdRng::seed_from_u64(0);
        let fmt = fp8();
        let w = sparse_matrix(9, 16, 0.3, &mut rng);
        let a = Tensor::randn(&[5, 16], &mut rng);
        let csr = CsrWeights::from_dense(&w, &fmt);
        assert_close(&csr.gemm(&a), &a.matmul_nt(&fmt.quantize(&w)), 1e-4, "csr");
        assert!(csr.sparsity() > 0.5, "sparsity {}", csr.sparsity());
        assert_eq!(csr.pruning_error(&fmt.quantize(&w)), 0.0);
    }

    #[test]
    fn csr_dense_regime_matches_sparse_kernel() {
        // Density 0.5 crosses into the dense regime; a down-sampled copy
        // of the same rows runs sparse — both must equal the reference.
        let mut rng = StdRng::seed_from_u64(10);
        let fmt = fp8();
        let dense_side = sparse_matrix(24, 32, 0.6, &mut rng);
        let a = Tensor::randn(&[7, 32], &mut rng);
        let csr = CsrWeights::from_dense(&dense_side, &fmt);
        assert!(
            pick_sparse_regime(csr.nnz(), 7, 24, 32, false) == SparseRegime::Dense,
            "expected dense regime at density {}",
            1.0 - csr.sparsity()
        );
        assert_close(&csr.gemm(&a), &a.matmul_nt(&fmt.quantize(&dense_side)), 1e-4, "dense regime");
    }

    #[test]
    fn csr_payload_shrinks_with_sparsity() {
        let mut rng = StdRng::seed_from_u64(1);
        let dense_bytes = 64 * 64 * 4;
        let very_sparse = CsrWeights::from_dense(&sparse_matrix(64, 64, 0.05, &mut rng), &fp8());
        assert!(
            very_sparse.payload_bytes() < dense_bytes / 2,
            "{} vs dense {dense_bytes}",
            very_sparse.payload_bytes()
        );
    }

    #[test]
    fn csr_int_values_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let fmt = TensorQuantizer::Int(IntFormat::from_range(8, -3.0, 3.0));
        let w = sparse_matrix(12, 24, 0.2, &mut rng);
        let a = Tensor::randn(&[4, 24], &mut rng);
        let csr = CsrWeights::from_dense(&w, &fmt);
        assert_close(&csr.gemm(&a), &a.matmul_nt(&csr.to_dense()), 1e-4, "int csr");
    }

    #[test]
    fn two_four_keeps_at_least_half_zeros() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Tensor::randn(&[8, 16], &mut rng);
        let pruned = TwoFourWeights::prune(&w, &fp8()).to_dense();
        let zeros = pruned.data().iter().filter(|&&v| v == 0.0).count();
        // Exactly half by structure; value quantization may zero more.
        assert!(zeros >= 8 * 16 / 2, "zeros {zeros}");
        for quad in pruned.data().chunks(4) {
            assert!(quad.iter().filter(|&&v| v != 0.0).count() <= 2);
        }
    }

    #[test]
    fn two_four_keeps_largest_magnitudes() {
        // FP8 (e4m3) represents ±5.0 and 3.0 exactly, so the pinned
        // survivors come through bit-exact.
        let w = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[1, 4]);
        let pruned = TwoFourWeights::prune(&w, &fp8()).to_dense();
        assert_eq!(pruned.data(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn two_four_gemm_matches_dense_of_pruned() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[6, 20], &mut rng);
        let a = Tensor::randn(&[4, 20], &mut rng);
        let tf = TwoFourWeights::prune(&w, &fp8());
        assert_close(&tf.gemm(&a), &a.matmul_nt(&tf.to_dense()), 1e-4, "2:4");
    }

    #[test]
    fn two_four_payload_is_half_codes_plus_metadata() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::randn(&[32, 32], &mut rng);
        let tf = TwoFourWeights::prune(&w, &fp8());
        // FP8 codes: 1 byte per survivor (half the elements); metadata:
        // 1 byte per group of 4 — 5.3× below dense FP32.
        assert_eq!(tf.payload_bytes(), 32 * 32 / 2 + 32 * 32 / 4);
    }

    #[test]
    fn fused_act_quant_is_bit_exact_with_prequantized_path() {
        let mut rng = StdRng::seed_from_u64(12);
        let act = TensorQuantizer::Fp(FpFormat::new(4, 3));
        let pq = PanelQuantizer::per_tensor(&act);
        let w = sparse_matrix(16, 32, 0.15, &mut rng);
        let a = Tensor::randn(&[9, 32], &mut rng).mul_scalar(2.5);
        let csr = CsrWeights::from_dense(&w, &fp8());
        let tf = TwoFourWeights::prune(&w, &fp8());
        for (name, fused, plain) in [
            ("csr", csr.gemm_fused(&a, Some(&pq)), csr.gemm(&act.quantize(&a))),
            ("2:4", tf.gemm_fused(&a, Some(&pq)), tf.gemm(&act.quantize(&a))),
        ] {
            for (i, (x, y)) in fused.data().iter().zip(plain.data()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} elem {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn degenerate_sparse_shapes_are_panic_free() {
        let mut rng = StdRng::seed_from_u64(6);
        let fmt = fp8();

        // Zero-row weights: [m, 0] product, no panic from zero-width rows.
        let csr = CsrWeights::from_dense(&Tensor::from_vec(Vec::new(), &[0, 8]), &fmt);
        let out = csr.gemm(&Tensor::randn(&[3, 8], &mut rng));
        assert_eq!(out.dims(), &[3, 0]);
        assert!(out.data().is_empty());
        assert_eq!(csr.sparsity(), 0.0);
        assert_eq!(csr.nnz(), 0);

        // Empty activation batch against real weights.
        let w = sparse_matrix(5, 8, 0.5, &mut rng);
        let csr = CsrWeights::from_dense(&w, &fmt);
        let out = csr.gemm(&Tensor::from_vec(Vec::new(), &[0, 8]));
        assert_eq!(out.dims(), &[0, 5]);

        // k == 0: every dot product is an empty reduction (all zeros).
        let csr = CsrWeights::from_dense(&Tensor::from_vec(Vec::new(), &[4, 0]), &fmt);
        let out = csr.gemm(&Tensor::from_vec(Vec::new(), &[2, 0]));
        assert_eq!(out.dims(), &[2, 4]);
        assert!(out.data().iter().all(|&v| v == 0.0));

        // The same sweep through the 2:4 structured path.
        let tf = TwoFourWeights::prune(&Tensor::from_vec(Vec::new(), &[0, 8]), &fmt);
        let out = tf.gemm(&Tensor::randn(&[3, 8], &mut rng));
        assert_eq!(out.dims(), &[3, 0]);
        assert_eq!(tf.to_dense().dims(), &[0, 8]);
        assert_eq!(tf.pruning_error(&Tensor::from_vec(Vec::new(), &[0, 8])), 0.0);

        let tf = TwoFourWeights::prune(&Tensor::randn(&[5, 8], &mut rng), &fmt);
        let out = tf.gemm(&Tensor::from_vec(Vec::new(), &[0, 8]));
        assert_eq!(out.dims(), &[0, 5]);

        let empty = Tensor::from_vec(Vec::new(), &[3, 0]);
        let tf = TwoFourWeights::prune(&empty, &fmt);
        let out = tf.gemm(&Tensor::from_vec(Vec::new(), &[2, 0]));
        assert_eq!(out.dims(), &[2, 3]);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn typed_constructors_reject_bad_shapes() {
        let fmt = fp8();
        let cube = Tensor::zeros(&[2, 2, 2]);
        assert!(CsrWeights::try_from_dense(&cube, &fmt).is_err());
        assert!(TwoFourWeights::try_prune(&cube, &fmt).is_err());
        let off = Tensor::zeros(&[4, 6]); // k % 4 != 0
        let err = TwoFourWeights::try_prune(&off, &fmt).unwrap_err();
        assert!(err.to_string().contains("divisible by 4"), "{err}");
        // CSR has no k alignment requirement.
        assert!(CsrWeights::try_from_dense(&off, &fmt).is_ok());
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn panicking_prune_delegates_to_typed_constructor() {
        TwoFourWeights::prune(&Tensor::zeros(&[2, 6]), &fp8());
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn sparse_shape_mismatch_panics() {
        let csr = CsrWeights::from_dense(&Tensor::zeros(&[4, 8]), &fp8());
        csr.gemm(&Tensor::zeros(&[2, 12]));
    }

    #[test]
    fn scatter_decode_matches_to_dense_on_partial_ranges() {
        // The PackedWeights decode must agree with to_dense on every
        // (start, len) sub-range — the dense-regime engine reads whole
        // rows, but the contract covers arbitrary windows.
        let mut rng = StdRng::seed_from_u64(13);
        let fmt = fp8();
        let w = sparse_matrix(6, 8, 0.4, &mut rng);
        let csr = CsrWeights::from_dense(&w, &fmt);
        let tf = TwoFourWeights::prune(&w, &fmt);
        let (csr_dense, tf_dense) = (csr.to_dense(), tf.to_dense());
        for (start, len) in [(0usize, 48usize), (3, 10), (8, 8), (15, 1), (40, 8), (47, 1)] {
            let mut got = vec![f32::NAN; len];
            csr.decode_range_into(start, &mut got);
            assert_eq!(&csr_dense.data()[start..start + len], &got[..], "csr {start}+{len}");
            tf.decode_range_into(start, &mut got);
            assert_eq!(&tf_dense.data()[start..start + len], &got[..], "2:4 {start}+{len}");
        }
    }

    #[test]
    fn pruning_error_small_when_half_already_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        // With ≥ half of each quad zero, 2:4 pruning is (near) lossless —
        // the residual error is the FP8 value quantization.
        let w = Tensor::randn(&[4, 16], &mut rng).map(|v| if v.abs() < 0.6 { 0.0 } else { v });
        let tf = TwoFourWeights::prune(&w, &fp8());
        // Quads with >2 nonzeros exist occasionally; allow small error.
        assert!(tf.pruning_error(&w) < 0.35, "error {}", tf.pruning_error(&w));
    }
}
