//! Packed-weight execution mode for the model stack.
//!
//! After the PTQ driver (`fpdq_core::quantize_unet`) bakes quantized
//! weights into a U-Net, every quantized Linear/Conv layer still executes
//! as a *dense* FP32 matmul over fake-quantized values. This module flips
//! the model into real packed execution: each layer's baked weight is
//! re-encoded into its chosen low-bit format ([`PackedFpTensor`] /
//! [`PackedIntTensor`] — bit-exact with the baked values by construction)
//! and a [`PackedForwardFn`] dispatching to the dequantize-on-the-fly
//! kernels is installed into the layer's [`fpdq_nn::PackedSlot`]. From
//! then on, end-to-end sampling streams 4-8× less weight traffic than
//! FP32 — the execution pattern whose cost the paper's §III motivates.
//!
//! Activation fake-quantizers keep running inside the layer taps, ahead
//! of the packed kernels, so packed execution composes with the paper's
//! weight+activation configurations unchanged.

use crate::conv::conv2d_packed;
use crate::gemm::gemm_packed;
use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use fpdq_core::{QuantReport, TensorQuantizer};
use fpdq_nn::{PackedForwardFn, QuantKind, QuantLayer, UNet};
use fpdq_tensor::conv::Conv2dSpec;
use fpdq_tensor::Tensor;
use std::rc::Rc;

/// Per-layer outcome of packing a model.
#[derive(Clone, Debug)]
pub struct PackedLayerInfo {
    /// Hierarchical layer name.
    pub name: String,
    /// Conv or linear.
    pub kind: QuantKind,
    /// Storage format description (e.g. `"E4M3(b=8)"`).
    pub format: String,
    /// Packed payload bytes.
    pub payload_bytes: usize,
    /// Dense FP32 bytes the payload replaces.
    pub dense_bytes: usize,
}

/// Outcome of [`pack_unet`]: which layers now execute packed, and the
/// aggregate weight-memory footprint.
#[derive(Clone, Debug, Default)]
pub struct PackReport {
    /// One entry per packed layer, in model order.
    pub layers: Vec<PackedLayerInfo>,
}

impl PackReport {
    /// Total packed payload bytes across layers.
    pub fn payload_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.payload_bytes).sum()
    }

    /// Total dense FP32 bytes the payloads replace.
    pub fn dense_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.dense_bytes).sum()
    }

    /// Weight-memory compression ratio (dense / packed).
    pub fn compression(&self) -> f32 {
        let p = self.payload_bytes();
        if p == 0 {
            return 1.0;
        }
        self.dense_bytes() as f32 / p as f32
    }
}

fn linear_forward<W: PackedWeights + 'static>(
    w: Rc<W>,
    bias: Option<Tensor>,
    out_features: usize,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| {
        let affine = |x2: &Tensor| {
            let y = gemm_packed(x2, &*w, None);
            match &bias {
                Some(b) => y.add(b),
                None => y,
            }
        };
        match x.ndim() {
            2 => affine(x),
            3 => {
                let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
                affine(&x.reshape(&[b * l, d])).reshape(&[b, l, out_features])
            }
            n => panic!("packed Linear expects 2-D or 3-D input, got rank {n}"),
        }
    })
}

fn conv_forward<W: PackedWeights + 'static>(
    w: Rc<W>,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| conv2d_packed(x, &*w, bias.as_ref(), spec, None))
}

/// Re-encodes one layer's (already baked) weight into `format` and
/// installs the packed forward override. Returns the packing stats.
///
/// # Panics
///
/// Panics if a conv layer reports no [`Conv2dSpec`].
pub fn install_packed_weight(layer: &dyn QuantLayer, format: &TensorQuantizer) -> PackedLayerInfo {
    let w = layer.weight().value();
    let bias = layer.bias().map(|b| b.value());
    let dense_bytes = w.numel() * std::mem::size_of::<f32>();
    let (payload_bytes, forward): (usize, PackedForwardFn) = match (format, layer.kind()) {
        (TensorQuantizer::Fp(fmt), QuantKind::Linear) => {
            let packed = Rc::new(PackedFpTensor::encode(&w, *fmt));
            (packed.payload_bytes(), linear_forward(packed, bias, w.dims()[0]))
        }
        (TensorQuantizer::Fp(fmt), QuantKind::Conv) => {
            let packed = Rc::new(PackedFpTensor::encode(&w, *fmt));
            let spec = layer.conv_spec().expect("conv layer without spec");
            (packed.payload_bytes(), conv_forward(packed, bias, spec))
        }
        (TensorQuantizer::Int(fmt), QuantKind::Linear) => {
            let packed = Rc::new(PackedIntTensor::encode(&w, *fmt));
            (packed.payload_bytes(), linear_forward(packed, bias, w.dims()[0]))
        }
        (TensorQuantizer::Int(fmt), QuantKind::Conv) => {
            let packed = Rc::new(PackedIntTensor::encode(&w, *fmt));
            let spec = layer.conv_spec().expect("conv layer without spec");
            (packed.payload_bytes(), conv_forward(packed, bias, spec))
        }
    };
    layer.packed().install(forward);
    PackedLayerInfo {
        name: layer.qname().to_string(),
        kind: layer.kind(),
        format: format.describe(),
        payload_bytes,
        dense_bytes,
    }
}

/// Switches a quantized U-Net to packed-weight execution: every layer the
/// PTQ report assigned a weight format is re-encoded into that format and
/// dispatched to the dequantize-on-the-fly kernels from now on.
///
/// The model must already hold the baked (quantized) weights the report
/// describes — re-encoding is then bit-exact, so packed sampling matches
/// the fake-quantized evaluation up to float summation order.
pub fn pack_unet(unet: &UNet, report: &QuantReport) -> PackReport {
    let mut packed = PackReport::default();
    unet.visit_quant_layers(&mut |layer| {
        let Some(rep) = report.layers.iter().find(|l| l.name == layer.qname()) else {
            return;
        };
        let Some(format) = &rep.weight_format else {
            return;
        };
        packed.layers.push(install_packed_weight(layer, format));
    });
    packed
}

/// Reverts a U-Net to dense execution (clears every packed override).
pub fn unpack_unet(unet: &UNet) {
    unet.visit_quant_layers(&mut |layer| layer.packed().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::calib::{CalibPoint, CalibrationSet};
    use fpdq_core::{quantize_unet, PtqConfig, RoundingConfig};
    use fpdq_nn::UNetConfig;
    use fpdq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized_tiny_unet(cfg: PtqConfig) -> (UNet, QuantReport, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let unet = UNet::new(UNetConfig::tiny(2), &mut rng);
        let points: Vec<CalibPoint> = (0..4)
            .map(|i| CalibPoint {
                x: Tensor::randn(&[1, 2, 8, 8], &mut rng),
                t: (i * 5) as f32,
                ctx: None,
            })
            .collect();
        let calib = CalibrationSet { init: points.clone(), rl: points };
        let mut cfg = cfg;
        cfg.bias_candidates = 15;
        cfg.rounding = RoundingConfig { iters: 8, batch: 2, ..RoundingConfig::default() };
        let report = quantize_unet(&unet, &calib, &cfg, &mut rng);
        (unet, report, rng)
    }

    #[test]
    fn packed_unet_matches_fake_quantized_forward() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![3.0], &[1]);
        let dense = unet.forward(&x, &t, None);

        let pack = pack_unet(&unet, &report);
        assert_eq!(pack.layers.len(), report.layers.len(), "every layer packs");
        let mut installed = 0;
        unet.visit_quant_layers(&mut |l| installed += usize::from(l.packed().is_installed()));
        assert_eq!(installed, pack.layers.len());

        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "packed forward diverged: {a} vs {b}");
        }

        unpack_unet(&unet);
        let reverted = unet.forward(&x, &t, None);
        assert_eq!(reverted.data(), dense.data(), "unpack must restore dense path");
    }

    #[test]
    fn fp8_packing_compresses_weights_4x() {
        let (unet, report, _) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let pack = pack_unet(&unet, &report);
        assert!(
            (pack.compression() - 4.0).abs() < 0.2,
            "FP8 compression {} != ~4x",
            pack.compression()
        );
    }

    #[test]
    fn int_packing_also_streams() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::int(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![11.0], &[1]);
        let dense = unet.forward(&x, &t, None);
        let pack = pack_unet(&unet, &report);
        assert!(pack.compression() > 3.5, "INT8 compression {}", pack.compression());
        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "{a} vs {b}");
        }
    }
}
