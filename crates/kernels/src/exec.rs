//! Packed-weight execution mode for the model stack.
//!
//! After the PTQ driver (`fpdq_core::quantize_unet`) bakes quantized
//! weights into a U-Net, every quantized Linear/Conv layer still executes
//! as a *dense* FP32 matmul over fake-quantized values. This module flips
//! the model into real packed execution: each layer's baked weight is
//! re-encoded into its chosen low-bit format ([`PackedFpTensor`] /
//! [`PackedIntTensor`] — bit-exact with the baked values by construction)
//! and a [`PackedForwardFn`] dispatching to the dequantize-on-the-fly
//! kernels is installed into the layer's [`fpdq_nn::PackedSlot`]. From
//! then on, end-to-end sampling streams 4-8× less weight traffic than
//! FP32 — the execution pattern whose cost the paper's §III motivates.
//!
//! Activation quantization is *fused into the packed kernels*: when the
//! PTQ report assigned a layer one whole-input activation format, the
//! layer's tap quantizer is suspended (parked in the
//! [`fpdq_nn::PackedSlot`]) and the packed forward quantizes the
//! activations inside its tile loop through the boundary tables of
//! [`fpdq_core::BoundaryQuantizer`] — bit-exact with the tap's simulated
//! quantizer, without the per-element `log2`/`powf` or the intermediate
//! activation tensor. Split-quantized layers (separate trunk/skip
//! formats) keep their tap quantizers; the packed kernel then runs on the
//! already-quantized input, which is idempotent and therefore still
//! exact. [`unpack_unet`] restores the suspended tap closures.
//!
//! # Batched multi-image sampling
//!
//! The installed forwards are batch-shaped end to end: a batched sampler
//! step hands each packed linear an `[batch × positions, k]` activation
//! matrix and each packed conv an `[batch, c, h, w]` image stack, and
//! the kernels — the conv via the same implicit-GEMM micro-kernel as the
//! linear ([`crate::conv`]) — decode every weight tile **once per
//! call** — once per sampling step, not once per image — picking their
//! parallel regime from the actual shape ([`crate::schedule`]). Because every regime is
//! bit-identical and every layer treats the batch dimension
//! independently, image `i` of a batch-N packed sampling run is
//! bit-identical to a batch-1 run with the same per-image seed
//! (`tests/batched_consistency.rs` pins this end to end).

use crate::conv::conv2d_packed_fused;
use crate::gemm::gemm_packed_fused;
use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use fpdq_core::{PanelQuantizer, QuantReport, TensorQuantizer};
use fpdq_nn::{PackedForwardFn, QuantKind, QuantLayer, UNet};
use fpdq_tensor::conv::Conv2dSpec;
use fpdq_tensor::{FpdqError, Tensor};
use std::rc::Rc;

/// Per-layer outcome of packing a model.
#[derive(Clone, Debug)]
pub struct PackedLayerInfo {
    /// Hierarchical layer name.
    pub name: String,
    /// Conv or linear.
    pub kind: QuantKind,
    /// Storage format description (e.g. `"E4M3(b=8)"`).
    pub format: String,
    /// Fused activation format description, when the packed forward
    /// quantizes activations inside its tile loop.
    pub fused_act: Option<String>,
    /// Packed payload bytes.
    pub payload_bytes: usize,
    /// Dense FP32 bytes the payload replaces.
    pub dense_bytes: usize,
}

/// Outcome of [`pack_unet`]: which layers now execute packed, and the
/// aggregate weight-memory footprint.
#[derive(Clone, Debug, Default)]
pub struct PackReport {
    /// One entry per packed layer, in model order.
    pub layers: Vec<PackedLayerInfo>,
}

impl PackReport {
    /// Name of the SIMD path the packed kernels dispatch to
    /// (`scalar`/`avx2`/`neon` — see [`fpdq_tensor::simd`]), for CLI
    /// reports and cross-machine bench comparability. This reflects the
    /// process-wide dispatch (fixed for the process lifetime), not a
    /// per-report property.
    pub fn isa(&self) -> &'static str {
        fpdq_tensor::simd::active().name()
    }

    /// Total packed payload bytes across layers.
    pub fn payload_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.payload_bytes).sum()
    }

    /// Total dense FP32 bytes the payloads replace.
    pub fn dense_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.dense_bytes).sum()
    }

    /// Weight-memory compression ratio (dense / packed).
    pub fn compression(&self) -> f32 {
        let p = self.payload_bytes();
        if p == 0 {
            return 1.0;
        }
        self.dense_bytes() as f32 / p as f32
    }

    /// Number of layers whose activation quantizer runs fused inside the
    /// packed kernel (vs. staying in the layer tap).
    pub fn fused_act_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.fused_act.is_some()).count()
    }
}

fn linear_forward<W: PackedWeights + 'static>(
    w: Rc<W>,
    bias: Option<Tensor>,
    out_features: usize,
    act: Option<PanelQuantizer>,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| {
        let affine = |x2: &Tensor| {
            let y = gemm_packed_fused(x2, &*w, act.as_ref());
            match &bias {
                Some(b) => y.add(b),
                None => y,
            }
        };
        match x.ndim() {
            2 => affine(x),
            3 => {
                let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
                affine(&x.reshape(&[b * l, d])).reshape(&[b, l, out_features])
            }
            n => panic!("packed Linear expects 2-D or 3-D input, got rank {n}"),
        }
    })
}

fn conv_forward<W: PackedWeights + 'static>(
    w: Rc<W>,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
    act: Option<PanelQuantizer>,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| conv2d_packed_fused(x, &*w, bias.as_ref(), spec, act.as_ref()))
}

/// Re-encodes one layer's (already baked) weight into `format` and
/// installs the packed forward override; when `act` names the layer's
/// whole-input activation format, the tap's quantizer closure is
/// suspended into the [`fpdq_nn::PackedSlot`] and quantization runs fused
/// inside the packed kernel instead. Returns the packing stats.
///
/// # Panics
///
/// Panics if a conv layer reports no [`Conv2dSpec`];
/// [`try_install_packed_weight`] is the non-panicking variant.
pub fn install_packed_weight(
    layer: &dyn QuantLayer,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> PackedLayerInfo {
    match try_install_packed_weight(layer, format, act) {
        Ok(info) => info,
        Err(e) => panic!("{e}"),
    }
}

/// Validating variant of [`install_packed_weight`]: a conv layer without a
/// [`Conv2dSpec`] comes back as a typed [`FpdqError`] instead of a panic.
/// Validation happens before any mutation, so an `Err` leaves the layer
/// exactly as it was.
pub fn try_install_packed_weight(
    layer: &dyn QuantLayer,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> Result<PackedLayerInfo, FpdqError> {
    if layer.kind() == QuantKind::Conv && layer.conv_spec().is_none() {
        return Err(FpdqError::missing(format!(
            "conv layer without spec: {} reports no Conv2dSpec",
            layer.qname()
        )));
    }
    let w = layer.weight().value();
    let packed = match format {
        TensorQuantizer::Fp(fmt) => PackedTensor::Fp(Rc::new(PackedFpTensor::encode(&w, *fmt))),
        TensorQuantizer::Int(fmt) => PackedTensor::Int(Rc::new(PackedIntTensor::encode(&w, *fmt))),
    };
    install_packed(layer, packed, format, act)
}

/// A prebuilt packed tensor of either numeric family — what the
/// container loader constructs over its zero-copy payload views and
/// hands to [`try_install_prebuilt`].
#[derive(Clone)]
pub enum PackedTensor {
    /// Packed ExMy floating point.
    Fp(Rc<PackedFpTensor>),
    /// Packed affine integer.
    Int(Rc<PackedIntTensor>),
}

impl PackedTensor {
    /// Logical shape.
    pub fn dims(&self) -> &[usize] {
        match self {
            PackedTensor::Fp(p) => p.dims(),
            PackedTensor::Int(p) => p.dims(),
        }
    }

    /// Packed payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        match self {
            PackedTensor::Fp(p) => p.payload_bytes(),
            PackedTensor::Int(p) => p.payload_bytes(),
        }
    }
}

/// Installs an already-built packed tensor into a layer **without
/// re-encoding** — the container fast path: the payload is a zero-copy
/// view of the file mapping, so model load skips the whole
/// quantize-and-pack cost. Shares the fuse/suspend logic of
/// [`try_install_packed_weight`], and validates that the packed shape
/// matches the layer before touching any state.
pub fn try_install_prebuilt(
    layer: &dyn QuantLayer,
    packed: PackedTensor,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> Result<PackedLayerInfo, FpdqError> {
    if layer.kind() == QuantKind::Conv && layer.conv_spec().is_none() {
        return Err(FpdqError::missing(format!(
            "conv layer without spec: {} reports no Conv2dSpec",
            layer.qname()
        )));
    }
    let w_dims = layer.weight().value().dims().to_vec();
    if packed.dims() != w_dims {
        return Err(FpdqError::corrupt(format!(
            "packed dims {:?} do not match layer {} weight dims {:?}",
            packed.dims(),
            layer.qname(),
            w_dims
        )));
    }
    install_packed(layer, packed, format, act)
}

/// Shared tail of the two install paths: fuse decision, forward
/// construction, tap suspension, slot install. Callers have already
/// validated the conv spec (and, for prebuilt tensors, the shape).
fn install_packed(
    layer: &dyn QuantLayer,
    packed: PackedTensor,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> Result<PackedLayerInfo, FpdqError> {
    let w = layer.weight().value();
    let bias = layer.bias().map(|b| b.value());
    let dense_bytes = w.numel() * std::mem::size_of::<f32>();
    // Re-packing an already-packed layer must behave like packing the
    // dense layer: restore any closure a previous fused install parked,
    // so the fusing decision below sees the original tap state
    // (idempotency).
    if let Some(f) = layer.packed().take_suspended_act() {
        layer.tap().borrow_mut().act_quant = Some(f);
    }
    // Only fuse when the tap holds exactly the whole-input quantizer this
    // format describes (split trunk/skip taps keep their closures — the
    // fused kernel would need the concatenation geometry).
    let fused_act = act.filter(|_| {
        let tap = layer.tap().borrow();
        tap.act_quant.is_some() && tap.act_quant_skip.is_none()
    });
    let pq = fused_act.map(PanelQuantizer::per_tensor);
    let payload_bytes = packed.payload_bytes();
    let forward: PackedForwardFn = match (packed, layer.kind()) {
        (PackedTensor::Fp(p), QuantKind::Linear) => linear_forward(p, bias, w.dims()[0], pq),
        (PackedTensor::Fp(p), QuantKind::Conv) => {
            let spec = layer.conv_spec().expect("conv layer without spec");
            conv_forward(p, bias, spec, pq)
        }
        (PackedTensor::Int(p), QuantKind::Linear) => linear_forward(p, bias, w.dims()[0], pq),
        (PackedTensor::Int(p), QuantKind::Conv) => {
            let spec = layer.conv_spec().expect("conv layer without spec");
            conv_forward(p, bias, spec, pq)
        }
    };
    if fused_act.is_some() {
        // The fused kernel now owns activation quantization; park the
        // tap's closure so unpacking can restore it.
        let suspended = layer.tap().borrow_mut().act_quant.take();
        if let Some(f) = suspended {
            layer.packed().suspend_act(f);
        }
    }
    layer.packed().install(forward);
    Ok(PackedLayerInfo {
        name: layer.qname().to_string(),
        kind: layer.kind(),
        format: format.describe(),
        fused_act: fused_act.map(TensorQuantizer::describe),
        payload_bytes,
        dense_bytes,
    })
}

/// Switches a quantized U-Net to packed-weight execution: every layer the
/// PTQ report assigned a weight format is re-encoded into that format and
/// dispatched to the dequantize-on-the-fly kernels from now on, with
/// whole-input activation quantizers fused into the kernels' tile loops.
///
/// The model must already hold the baked (quantized) weights the report
/// describes — re-encoding is then bit-exact, so packed sampling matches
/// the fake-quantized evaluation up to float summation order.
pub fn pack_unet(unet: &UNet, report: &QuantReport) -> PackReport {
    match try_pack_unet(unet, report) {
        Ok(packed) => packed,
        Err(e) => panic!("{e}"),
    }
}

/// Validating variant of [`pack_unet`]: format/spec problems come back as
/// a typed [`FpdqError`]. On `Err`, layers already packed before the
/// failing one are reverted via [`unpack_unet`], so the model is never
/// left half-packed.
pub fn try_pack_unet(unet: &UNet, report: &QuantReport) -> Result<PackReport, FpdqError> {
    let mut packed = PackReport::default();
    let mut failed = None;
    unet.visit_quant_layers(&mut |layer| {
        if failed.is_some() {
            return;
        }
        let Some(rep) = report.layers.iter().find(|l| l.name == layer.qname()) else {
            return;
        };
        let Some(format) = &rep.weight_format else {
            return;
        };
        match try_install_packed_weight(layer, format, rep.act_format.as_ref()) {
            Ok(info) => packed.layers.push(info),
            Err(e) => failed = Some(e),
        }
    });
    if let Some(e) = failed {
        unpack_unet(unet);
        return Err(e);
    }
    Ok(packed)
}

/// Reverts a U-Net to dense execution: clears every packed override and
/// restores any tap activation quantizer the fused path had suspended.
pub fn unpack_unet(unet: &UNet) {
    unet.visit_quant_layers(&mut |layer| {
        if let Some(f) = layer.packed().clear() {
            layer.tap().borrow_mut().act_quant = Some(f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::calib::{CalibPoint, CalibrationSet};
    use fpdq_core::{quantize_unet, PtqConfig, RoundingConfig};
    use fpdq_nn::UNetConfig;
    use fpdq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized_tiny_unet(cfg: PtqConfig) -> (UNet, QuantReport, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let unet = UNet::new(UNetConfig::tiny(2), &mut rng);
        let points: Vec<CalibPoint> = (0..4)
            .map(|i| CalibPoint {
                x: Tensor::randn(&[1, 2, 8, 8], &mut rng),
                t: (i * 5) as f32,
                ctx: None,
            })
            .collect();
        let calib = CalibrationSet { init: points.clone(), rl: points };
        let mut cfg = cfg;
        cfg.bias_candidates = 15;
        cfg.rounding = RoundingConfig { iters: 8, batch: 2, ..RoundingConfig::default() };
        let report = quantize_unet(&unet, &calib, &cfg, &mut rng);
        (unet, report, rng)
    }

    #[test]
    fn packed_unet_matches_fake_quantized_forward() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![3.0], &[1]);
        let dense = unet.forward(&x, &t, None);

        let pack = pack_unet(&unet, &report);
        assert_eq!(pack.layers.len(), report.layers.len(), "every layer packs");
        let mut installed = 0;
        unet.visit_quant_layers(&mut |l| installed += usize::from(l.packed().is_installed()));
        assert_eq!(installed, pack.layers.len());

        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "packed forward diverged: {a} vs {b}");
        }

        unpack_unet(&unet);
        let reverted = unet.forward(&x, &t, None);
        assert_eq!(reverted.data(), dense.data(), "unpack must restore dense path");
    }

    #[test]
    fn fused_act_quant_suspends_and_restores_taps() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![5.0], &[1]);
        let dense = unet.forward(&x, &t, None);

        let mut taps_before = 0;
        unet.visit_quant_layers(&mut |l| {
            taps_before += usize::from(l.tap().borrow().act_quant.is_some());
        });
        assert!(taps_before > 0, "PTQ must have installed tap quantizers");

        let pack = pack_unet(&unet, &report);
        assert!(pack.fused_act_layers() > 0, "whole-input layers must fuse");
        // Every fused layer's tap closure is parked in the slot.
        let mut suspended_taps = 0;
        unet.visit_quant_layers(&mut |l| {
            suspended_taps += usize::from(l.tap().borrow().act_quant.is_none());
        });
        assert_eq!(suspended_taps, pack.fused_act_layers(), "fused layers suspend their taps");

        // Fused execution still matches the fake-quantized reference.
        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "fused forward diverged: {a} vs {b}");
        }

        // Unpacking puts every tap closure back.
        unpack_unet(&unet);
        let mut taps_after = 0;
        unet.visit_quant_layers(&mut |l| {
            taps_after += usize::from(l.tap().borrow().act_quant.is_some());
        });
        assert_eq!(taps_after, taps_before, "unpack must restore suspended taps");
        assert_eq!(unet.forward(&x, &t, None).data(), dense.data());
    }

    #[test]
    fn fp8_packing_compresses_weights_4x() {
        let (unet, report, _) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let pack = pack_unet(&unet, &report);
        assert!(
            (pack.compression() - 4.0).abs() < 0.2,
            "FP8 compression {} != ~4x",
            pack.compression()
        );
    }

    #[test]
    fn int_packing_also_streams() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::int(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![11.0], &[1]);
        let dense = unet.forward(&x, &t, None);
        let pack = pack_unet(&unet, &report);
        assert!(pack.compression() > 3.5, "INT8 compression {}", pack.compression());
        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "{a} vs {b}");
        }
    }
}
