//! Packed-weight execution mode for the model stack.
//!
//! After the PTQ driver (`fpdq_core::quantize_unet`) bakes quantized
//! weights into a U-Net, every quantized Linear/Conv layer still executes
//! as a *dense* FP32 matmul over fake-quantized values. This module flips
//! the model into real packed execution: each layer's baked weight is
//! re-encoded into its chosen low-bit format ([`PackedFpTensor`] /
//! [`PackedIntTensor`] — bit-exact with the baked values by construction)
//! and a [`PackedForwardFn`] dispatching to the dequantize-on-the-fly
//! kernels is installed into the layer's [`fpdq_nn::PackedSlot`]. From
//! then on, end-to-end sampling streams 4-8× less weight traffic than
//! FP32 — the execution pattern whose cost the paper's §III motivates.
//!
//! Activation quantization is *fused into the packed kernels*: when the
//! PTQ report assigned a layer one whole-input activation format, the
//! layer's tap quantizer is suspended (parked in the
//! [`fpdq_nn::PackedSlot`]) and the packed forward quantizes the
//! activations inside its tile loop through the boundary tables of
//! [`fpdq_core::BoundaryQuantizer`] — bit-exact with the tap's simulated
//! quantizer, without the per-element `log2`/`powf` or the intermediate
//! activation tensor. Split-quantized layers (separate trunk/skip
//! formats) keep their tap quantizers; the packed kernel then runs on the
//! already-quantized input, which is idempotent and therefore still
//! exact. [`unpack_unet`] restores the suspended tap closures.
//!
//! # Batched multi-image sampling
//!
//! The installed forwards are batch-shaped end to end: a batched sampler
//! step hands each packed linear an `[batch × positions, k]` activation
//! matrix and each packed conv an `[batch, c, h, w]` image stack, and
//! the kernels — the conv via the same implicit-GEMM micro-kernel as the
//! linear ([`crate::conv`]) — decode every weight tile **once per
//! call** — once per sampling step, not once per image — picking their
//! parallel regime from the actual shape ([`crate::schedule`]). Because every regime is
//! bit-identical and every layer treats the batch dimension
//! independently, image `i` of a batch-N packed sampling run is
//! bit-identical to a batch-1 run with the same per-image seed
//! (`tests/batched_consistency.rs` pins this end to end).

use crate::conv::conv2d_packed_fused;
use crate::gemm::gemm_packed_fused;
use crate::packed::{PackedFpTensor, PackedIntTensor, PackedWeights};
use crate::sparse::{CsrWeights, TwoFourWeights};
use fpdq_core::{PanelQuantizer, QuantReport, TensorQuantizer};
use fpdq_nn::{PackedForwardFn, QuantKind, QuantLayer, UNet};
use fpdq_tensor::conv::Conv2dSpec;
use fpdq_tensor::{FpdqError, Tensor};
use std::rc::Rc;

/// Per-layer outcome of packing a model.
#[derive(Clone, Debug)]
pub struct PackedLayerInfo {
    /// Hierarchical layer name.
    pub name: String,
    /// Conv or linear.
    pub kind: QuantKind,
    /// Storage format description (e.g. `"E4M3(b=8)"`).
    pub format: String,
    /// Fused activation format description, when the packed forward
    /// quantizes activations inside its tile loop.
    pub fused_act: Option<String>,
    /// Packed payload bytes.
    pub payload_bytes: usize,
    /// Dense FP32 bytes the payload replaces.
    pub dense_bytes: usize,
    /// Fraction of zeros in the installed weight, when the layer went
    /// through a sparsity mode ([`pack_unet_sparse`]); `None` for plain
    /// packed installs and for layers the mode skipped.
    pub sparsity: Option<f32>,
    /// Relative Frobenius error pruning introduces *on top of* value
    /// quantization, measured against the quantized dense weights (0.0
    /// for CSR, which only drops exact zeros); `None` when no sparsity
    /// mode applied.
    pub pruning_error: Option<f32>,
}

/// Outcome of [`pack_unet`]: which layers now execute packed, and the
/// aggregate weight-memory footprint.
#[derive(Clone, Debug, Default)]
pub struct PackReport {
    /// One entry per packed layer, in model order.
    pub layers: Vec<PackedLayerInfo>,
}

impl PackReport {
    /// Name of the SIMD path the packed kernels dispatch to
    /// (`scalar`/`avx2`/`neon` — see [`fpdq_tensor::simd`]), for CLI
    /// reports and cross-machine bench comparability. This reflects the
    /// process-wide dispatch (fixed for the process lifetime), not a
    /// per-report property.
    pub fn isa(&self) -> &'static str {
        fpdq_tensor::simd::active().name()
    }

    /// Total packed payload bytes across layers.
    pub fn payload_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.payload_bytes).sum()
    }

    /// Total dense FP32 bytes the payloads replace.
    pub fn dense_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.dense_bytes).sum()
    }

    /// Weight-memory compression ratio (dense / packed).
    pub fn compression(&self) -> f32 {
        let p = self.payload_bytes();
        if p == 0 {
            return 1.0;
        }
        self.dense_bytes() as f32 / p as f32
    }

    /// Number of layers whose activation quantizer runs fused inside the
    /// packed kernel (vs. staying in the layer tap).
    pub fn fused_act_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.fused_act.is_some()).count()
    }
}

fn linear_forward<W: PackedWeights + 'static>(
    w: Rc<W>,
    bias: Option<Tensor>,
    out_features: usize,
    act: Option<PanelQuantizer>,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| {
        let affine = |x2: &Tensor| {
            let y = gemm_packed_fused(x2, &*w, act.as_ref());
            match &bias {
                Some(b) => y.add(b),
                None => y,
            }
        };
        match x.ndim() {
            2 => affine(x),
            3 => {
                let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
                affine(&x.reshape(&[b * l, d])).reshape(&[b, l, out_features])
            }
            n => panic!("packed Linear expects 2-D or 3-D input, got rank {n}"),
        }
    })
}

fn conv_forward<W: PackedWeights + 'static>(
    w: Rc<W>,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
    act: Option<PanelQuantizer>,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| conv2d_packed_fused(x, &*w, bias.as_ref(), spec, act.as_ref()))
}

/// Re-encodes one layer's (already baked) weight into `format` and
/// installs the packed forward override; when `act` names the layer's
/// whole-input activation format, the tap's quantizer closure is
/// suspended into the [`fpdq_nn::PackedSlot`] and quantization runs fused
/// inside the packed kernel instead. Returns the packing stats.
///
/// # Panics
///
/// Panics if a conv layer reports no [`Conv2dSpec`];
/// [`try_install_packed_weight`] is the non-panicking variant.
pub fn install_packed_weight(
    layer: &dyn QuantLayer,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> PackedLayerInfo {
    match try_install_packed_weight(layer, format, act) {
        Ok(info) => info,
        Err(e) => panic!("{e}"),
    }
}

/// Validating variant of [`install_packed_weight`]: a conv layer without a
/// [`Conv2dSpec`] comes back as a typed [`FpdqError`] instead of a panic.
/// Validation happens before any mutation, so an `Err` leaves the layer
/// exactly as it was.
pub fn try_install_packed_weight(
    layer: &dyn QuantLayer,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> Result<PackedLayerInfo, FpdqError> {
    if layer.kind() == QuantKind::Conv && layer.conv_spec().is_none() {
        return Err(FpdqError::missing(format!(
            "conv layer without spec: {} reports no Conv2dSpec",
            layer.qname()
        )));
    }
    let w = layer.weight().value();
    let packed = match format {
        TensorQuantizer::Fp(fmt) => PackedTensor::Fp(Rc::new(PackedFpTensor::encode(&w, *fmt))),
        TensorQuantizer::Int(fmt) => PackedTensor::Int(Rc::new(PackedIntTensor::encode(&w, *fmt))),
    };
    install_packed(layer, packed, format, act)
}

/// A prebuilt packed tensor of either numeric family — what the
/// container loader constructs over its zero-copy payload views and
/// hands to [`try_install_prebuilt`].
#[derive(Clone)]
pub enum PackedTensor {
    /// Packed ExMy floating point.
    Fp(Rc<PackedFpTensor>),
    /// Packed affine integer.
    Int(Rc<PackedIntTensor>),
}

impl PackedTensor {
    /// Logical shape.
    pub fn dims(&self) -> &[usize] {
        match self {
            PackedTensor::Fp(p) => p.dims(),
            PackedTensor::Int(p) => p.dims(),
        }
    }

    /// Packed payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        match self {
            PackedTensor::Fp(p) => p.payload_bytes(),
            PackedTensor::Int(p) => p.payload_bytes(),
        }
    }
}

/// Installs an already-built packed tensor into a layer **without
/// re-encoding** — the container fast path: the payload is a zero-copy
/// view of the file mapping, so model load skips the whole
/// quantize-and-pack cost. Shares the fuse/suspend logic of
/// [`try_install_packed_weight`], and validates that the packed shape
/// matches the layer before touching any state.
pub fn try_install_prebuilt(
    layer: &dyn QuantLayer,
    packed: PackedTensor,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> Result<PackedLayerInfo, FpdqError> {
    if layer.kind() == QuantKind::Conv && layer.conv_spec().is_none() {
        return Err(FpdqError::missing(format!(
            "conv layer without spec: {} reports no Conv2dSpec",
            layer.qname()
        )));
    }
    let w_dims = layer.weight().value().dims().to_vec();
    if packed.dims() != w_dims {
        return Err(FpdqError::corrupt(format!(
            "packed dims {:?} do not match layer {} weight dims {:?}",
            packed.dims(),
            layer.qname(),
            w_dims
        )));
    }
    install_packed(layer, packed, format, act)
}

/// The front half of every install path: restore a previously suspended
/// tap closure (idempotency of re-packing), then decide whether this
/// install fuses activation quantization into its kernel. Only fuses
/// when the tap holds exactly the whole-input quantizer the format
/// describes (split trunk/skip taps keep their closures — the fused
/// kernel would need the concatenation geometry).
fn fuse_decision<'a>(
    layer: &dyn QuantLayer,
    act: Option<&'a TensorQuantizer>,
) -> Option<&'a TensorQuantizer> {
    if let Some(f) = layer.packed().take_suspended_act() {
        layer.tap().borrow_mut().act_quant = Some(f);
    }
    act.filter(|_| {
        let tap = layer.tap().borrow();
        tap.act_quant.is_some() && tap.act_quant_skip.is_none()
    })
}

/// The back half of every install path: when the install fused, park the
/// tap's quantizer closure in the slot (so unpacking can restore it),
/// then install the forward override.
fn finish_install(layer: &dyn QuantLayer, forward: PackedForwardFn, fused: bool) {
    if fused {
        // The fused kernel now owns activation quantization.
        let suspended = layer.tap().borrow_mut().act_quant.take();
        if let Some(f) = suspended {
            layer.packed().suspend_act(f);
        }
    }
    layer.packed().install(forward);
}

/// Shared tail of the two install paths: fuse decision, forward
/// construction, tap suspension, slot install. Callers have already
/// validated the conv spec (and, for prebuilt tensors, the shape).
fn install_packed(
    layer: &dyn QuantLayer,
    packed: PackedTensor,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
) -> Result<PackedLayerInfo, FpdqError> {
    let w = layer.weight().value();
    let bias = layer.bias().map(|b| b.value());
    let dense_bytes = w.numel() * std::mem::size_of::<f32>();
    let fused_act = fuse_decision(layer, act);
    let pq = fused_act.map(PanelQuantizer::per_tensor);
    let payload_bytes = packed.payload_bytes();
    let forward: PackedForwardFn = match (packed, layer.kind()) {
        (PackedTensor::Fp(p), QuantKind::Linear) => linear_forward(p, bias, w.dims()[0], pq),
        (PackedTensor::Fp(p), QuantKind::Conv) => {
            let spec = layer.conv_spec().expect("conv layer without spec");
            conv_forward(p, bias, spec, pq)
        }
        (PackedTensor::Int(p), QuantKind::Linear) => linear_forward(p, bias, w.dims()[0], pq),
        (PackedTensor::Int(p), QuantKind::Conv) => {
            let spec = layer.conv_spec().expect("conv layer without spec");
            conv_forward(p, bias, spec, pq)
        }
    };
    finish_install(layer, forward, fused_act.is_some());
    Ok(PackedLayerInfo {
        name: layer.qname().to_string(),
        kind: layer.kind(),
        format: format.describe(),
        fused_act: fused_act.map(TensorQuantizer::describe),
        payload_bytes,
        dense_bytes,
        sparsity: None,
        pruning_error: None,
    })
}

/// Which sparse weight structure [`pack_unet_sparse`] installs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseMode {
    /// NVIDIA-style structured 2:4: prune each group of 4 consecutive
    /// weights to its 2 largest magnitudes, then quantize the survivors
    /// (prune-then-quantize — the order of the paper's fig. 11 sparsity
    /// ablation).
    TwoFour,
    /// Unstructured CSR over the exact zeros the quantizer creates; no
    /// pruning error by construction.
    Csr,
}

impl SparseMode {
    /// Parses the CLI spelling (`"2:4"` / `"csr"`, case-insensitive).
    pub fn parse(s: &str) -> Option<SparseMode> {
        match s.to_ascii_lowercase().as_str() {
            "2:4" | "24" | "two_four" => Some(SparseMode::TwoFour),
            "csr" => Some(SparseMode::Csr),
            _ => None,
        }
    }

    /// CLI-facing name.
    pub fn describe(&self) -> &'static str {
        match self {
            SparseMode::TwoFour => "2:4",
            SparseMode::Csr => "csr",
        }
    }
}

/// The sparse weight behind a packed linear forward, dispatching through
/// each format's crossover-aware fused GEMM.
enum SparseWeight {
    TwoFour(Rc<TwoFourWeights>),
    Csr(Rc<CsrWeights>),
}

impl SparseWeight {
    fn gemm_fused(&self, x: &Tensor, act: Option<&PanelQuantizer>) -> Tensor {
        match self {
            SparseWeight::TwoFour(w) => w.gemm_fused(x, act),
            SparseWeight::Csr(w) => w.gemm_fused(x, act),
        }
    }
}

/// [`linear_forward`] over a sparse weight structure: the same 2-D/3-D
/// input handling, with the GEMM routed through the sparse kernels (or
/// their dense-regime fallback — the crossover lives inside the call).
fn sparse_linear_forward(
    w: SparseWeight,
    bias: Option<Tensor>,
    out_features: usize,
    act: Option<PanelQuantizer>,
) -> PackedForwardFn {
    Rc::new(move |x: &Tensor| {
        let affine = |x2: &Tensor| {
            let y = w.gemm_fused(x2, act.as_ref());
            match &bias {
                Some(b) => y.add(b),
                None => y,
            }
        };
        match x.ndim() {
            2 => affine(x),
            3 => {
                let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
                affine(&x.reshape(&[b * l, d])).reshape(&[b, l, out_features])
            }
            n => panic!("packed Linear expects 2-D or 3-D input, got rank {n}"),
        }
    })
}

/// Installs one layer's weight through a sparsity mode (prune, then
/// quantize into `format`) and reports sparsity + pruning error.
///
/// * **Linear** layers get a true sparse forward: 2:4 or CSR structures
///   executing the panel-packed sparse kernels, with the density
///   crossover deciding sparse-vs-dense per call. A linear whose `k` is
///   not a multiple of 4 cannot carry 2:4 structure and falls back to
///   the plain packed install (`sparsity: None`).
/// * **Conv** layers prune their flattened `[o, c·kh·kw]` filter bank
///   (2:4 mode, when divisible by 4) but execute *dense* packed conv on
///   the pruned-and-quantized weights — the implicit-GEMM conv has no
///   sparse micro-kernel yet; the report still carries the sparsity and
///   pruning error so the fig. 11 ablation measures the full model.
///
/// Validation happens before any mutation, so an `Err` leaves the layer
/// exactly as it was.
pub fn try_install_sparse_weight(
    layer: &dyn QuantLayer,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
    mode: SparseMode,
) -> Result<PackedLayerInfo, FpdqError> {
    let w = layer.weight().value();
    if layer.kind() == QuantKind::Conv
        || (mode == SparseMode::TwoFour && !w.dim(1).is_multiple_of(4))
    {
        return install_sparse_dense_fallback(layer, format, act, mode);
    }
    let bias = layer.bias().map(|b| b.value());
    let dense_bytes = w.numel() * std::mem::size_of::<f32>();
    let (sparse, payload_bytes, sparsity, pruning_error) = match mode {
        SparseMode::TwoFour => {
            let tf = TwoFourWeights::try_prune(&w, format)?;
            // Pruning error excludes the value-quantization error that
            // dense packed execution shares: measure against the
            // quantized dense weights.
            let stats = (tf.payload_bytes(), tf.sparsity(), tf.pruning_error(&format.quantize(&w)));
            (SparseWeight::TwoFour(Rc::new(tf)), stats.0, stats.1, stats.2)
        }
        SparseMode::Csr => {
            let csr = CsrWeights::try_from_dense(&w, format)?;
            // CSR stores every nonzero of the quantized weights verbatim,
            // so pruning adds no error beyond quantization.
            let stats = (csr.payload_bytes(), csr.sparsity(), 0.0);
            (SparseWeight::Csr(Rc::new(csr)), stats.0, stats.1, stats.2)
        }
    };
    let fused_act = fuse_decision(layer, act);
    let pq = fused_act.map(PanelQuantizer::per_tensor);
    let forward = sparse_linear_forward(sparse, bias, w.dims()[0], pq);
    finish_install(layer, forward, fused_act.is_some());
    Ok(PackedLayerInfo {
        name: layer.qname().to_string(),
        kind: layer.kind(),
        format: format.describe(),
        fused_act: fused_act.map(TensorQuantizer::describe),
        payload_bytes,
        dense_bytes,
        sparsity: Some(sparsity),
        pruning_error: Some(pruning_error),
    })
}

/// The dense-execution arm of [`try_install_sparse_weight`]: conv layers
/// (and 2:4-incompatible linears) install the ordinary packed forward —
/// over the *pruned* weights when 2:4 applies to their flattened shape —
/// with the sparsity statistics reported alongside.
fn install_sparse_dense_fallback(
    layer: &dyn QuantLayer,
    format: &TensorQuantizer,
    act: Option<&TensorQuantizer>,
    mode: SparseMode,
) -> Result<PackedLayerInfo, FpdqError> {
    if layer.kind() == QuantKind::Conv && layer.conv_spec().is_none() {
        return Err(FpdqError::missing(format!(
            "conv layer without spec: {} reports no Conv2dSpec",
            layer.qname()
        )));
    }
    let w = layer.weight().value();
    let dims = w.dims().to_vec();
    let (o, flat_k) = (dims[0], w.numel() / dims[0].max(1));
    let stats = match mode {
        SparseMode::TwoFour if flat_k % 4 == 0 && flat_k > 0 => {
            let flat = w.reshape(&[o, flat_k]);
            let tf = TwoFourWeights::try_prune(&flat, format)?;
            let stats = (tf.sparsity(), tf.pruning_error(&format.quantize(&flat)));
            // Bake the pruned values in: the installed packed tensor
            // encodes the pruned-and-quantized matrix (encode of already
            // quantized values is bit-exact).
            let pruned = tf.to_dense().reshape(&dims);
            let packed = match format {
                TensorQuantizer::Fp(fmt) => {
                    PackedTensor::Fp(Rc::new(PackedFpTensor::encode(&pruned, *fmt)))
                }
                TensorQuantizer::Int(fmt) => {
                    PackedTensor::Int(Rc::new(PackedIntTensor::encode(&pruned, *fmt)))
                }
            };
            let mut info = install_packed(layer, packed, format, act)?;
            info.sparsity = Some(stats.0);
            info.pruning_error = Some(stats.1);
            return Ok(info);
        }
        SparseMode::TwoFour => None, // cannot carry 2:4 structure: plain install
        SparseMode::Csr => {
            // CSR drops only exact zeros; dense execution of the same
            // quantized weights is value-identical, so just measure them.
            let q = format.quantize(&w);
            let zeros = q.data().iter().filter(|&&v| v == 0.0).count();
            let sparsity = if q.numel() == 0 { 0.0 } else { zeros as f32 / q.numel() as f32 };
            Some((sparsity, 0.0))
        }
    };
    let mut info = try_install_packed_weight(layer, format, act)?;
    if let Some((sparsity, pruning_error)) = stats {
        info.sparsity = Some(sparsity);
        info.pruning_error = Some(pruning_error);
    }
    Ok(info)
}

/// [`pack_unet`] through a sparsity mode: every layer the report assigned
/// a weight format is pruned (per `mode`), quantized, and installed —
/// sparse kernels for compatible linears, dense packed execution on
/// pruned weights elsewhere — so fig. 11's sparsity ablation runs on the
/// real engine end to end.
///
/// # Panics
///
/// Panics on format/spec problems; [`try_pack_unet_sparse`] is the
/// non-panicking variant.
pub fn pack_unet_sparse(unet: &UNet, report: &QuantReport, mode: SparseMode) -> PackReport {
    match try_pack_unet_sparse(unet, report, mode) {
        Ok(packed) => packed,
        Err(e) => panic!("{e}"),
    }
}

/// Validating variant of [`pack_unet_sparse`]. On `Err`, layers already
/// packed before the failing one are reverted via [`unpack_unet`], so
/// the model is never left half-packed.
pub fn try_pack_unet_sparse(
    unet: &UNet,
    report: &QuantReport,
    mode: SparseMode,
) -> Result<PackReport, FpdqError> {
    let mut packed = PackReport::default();
    let mut failed = None;
    unet.visit_quant_layers(&mut |layer| {
        if failed.is_some() {
            return;
        }
        let Some(rep) = report.layers.iter().find(|l| l.name == layer.qname()) else {
            return;
        };
        let Some(format) = &rep.weight_format else {
            return;
        };
        match try_install_sparse_weight(layer, format, rep.act_format.as_ref(), mode) {
            Ok(info) => packed.layers.push(info),
            Err(e) => failed = Some(e),
        }
    });
    if let Some(e) = failed {
        unpack_unet(unet);
        return Err(e);
    }
    Ok(packed)
}

/// Switches a quantized U-Net to packed-weight execution: every layer the
/// PTQ report assigned a weight format is re-encoded into that format and
/// dispatched to the dequantize-on-the-fly kernels from now on, with
/// whole-input activation quantizers fused into the kernels' tile loops.
///
/// The model must already hold the baked (quantized) weights the report
/// describes — re-encoding is then bit-exact, so packed sampling matches
/// the fake-quantized evaluation up to float summation order.
pub fn pack_unet(unet: &UNet, report: &QuantReport) -> PackReport {
    match try_pack_unet(unet, report) {
        Ok(packed) => packed,
        Err(e) => panic!("{e}"),
    }
}

/// Validating variant of [`pack_unet`]: format/spec problems come back as
/// a typed [`FpdqError`]. On `Err`, layers already packed before the
/// failing one are reverted via [`unpack_unet`], so the model is never
/// left half-packed.
pub fn try_pack_unet(unet: &UNet, report: &QuantReport) -> Result<PackReport, FpdqError> {
    let mut packed = PackReport::default();
    let mut failed = None;
    unet.visit_quant_layers(&mut |layer| {
        if failed.is_some() {
            return;
        }
        let Some(rep) = report.layers.iter().find(|l| l.name == layer.qname()) else {
            return;
        };
        let Some(format) = &rep.weight_format else {
            return;
        };
        match try_install_packed_weight(layer, format, rep.act_format.as_ref()) {
            Ok(info) => packed.layers.push(info),
            Err(e) => failed = Some(e),
        }
    });
    if let Some(e) = failed {
        unpack_unet(unet);
        return Err(e);
    }
    Ok(packed)
}

/// Reverts a U-Net to dense execution: clears every packed override and
/// restores any tap activation quantizer the fused path had suspended.
pub fn unpack_unet(unet: &UNet) {
    unet.visit_quant_layers(&mut |layer| {
        if let Some(f) = layer.packed().clear() {
            layer.tap().borrow_mut().act_quant = Some(f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdq_core::calib::{CalibPoint, CalibrationSet};
    use fpdq_core::{quantize_unet, PtqConfig, RoundingConfig};
    use fpdq_nn::UNetConfig;
    use fpdq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized_tiny_unet(cfg: PtqConfig) -> (UNet, QuantReport, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let unet = UNet::new(UNetConfig::tiny(2), &mut rng);
        let points: Vec<CalibPoint> = (0..4)
            .map(|i| CalibPoint {
                x: Tensor::randn(&[1, 2, 8, 8], &mut rng),
                t: (i * 5) as f32,
                ctx: None,
            })
            .collect();
        let calib = CalibrationSet { init: points.clone(), rl: points };
        let mut cfg = cfg;
        cfg.bias_candidates = 15;
        cfg.rounding = RoundingConfig { iters: 8, batch: 2, ..RoundingConfig::default() };
        let report = quantize_unet(&unet, &calib, &cfg, &mut rng);
        (unet, report, rng)
    }

    #[test]
    fn packed_unet_matches_fake_quantized_forward() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![3.0], &[1]);
        let dense = unet.forward(&x, &t, None);

        let pack = pack_unet(&unet, &report);
        assert_eq!(pack.layers.len(), report.layers.len(), "every layer packs");
        let mut installed = 0;
        unet.visit_quant_layers(&mut |l| installed += usize::from(l.packed().is_installed()));
        assert_eq!(installed, pack.layers.len());

        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "packed forward diverged: {a} vs {b}");
        }

        unpack_unet(&unet);
        let reverted = unet.forward(&x, &t, None);
        assert_eq!(reverted.data(), dense.data(), "unpack must restore dense path");
    }

    #[test]
    fn fused_act_quant_suspends_and_restores_taps() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![5.0], &[1]);
        let dense = unet.forward(&x, &t, None);

        let mut taps_before = 0;
        unet.visit_quant_layers(&mut |l| {
            taps_before += usize::from(l.tap().borrow().act_quant.is_some());
        });
        assert!(taps_before > 0, "PTQ must have installed tap quantizers");

        let pack = pack_unet(&unet, &report);
        assert!(pack.fused_act_layers() > 0, "whole-input layers must fuse");
        // Every fused layer's tap closure is parked in the slot.
        let mut suspended_taps = 0;
        unet.visit_quant_layers(&mut |l| {
            suspended_taps += usize::from(l.tap().borrow().act_quant.is_none());
        });
        assert_eq!(suspended_taps, pack.fused_act_layers(), "fused layers suspend their taps");

        // Fused execution still matches the fake-quantized reference.
        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "fused forward diverged: {a} vs {b}");
        }

        // Unpacking puts every tap closure back.
        unpack_unet(&unet);
        let mut taps_after = 0;
        unet.visit_quant_layers(&mut |l| {
            taps_after += usize::from(l.tap().borrow().act_quant.is_some());
        });
        assert_eq!(taps_after, taps_before, "unpack must restore suspended taps");
        assert_eq!(unet.forward(&x, &t, None).data(), dense.data());
    }

    #[test]
    fn fp8_packing_compresses_weights_4x() {
        let (unet, report, _) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let pack = pack_unet(&unet, &report);
        assert!(
            (pack.compression() - 4.0).abs() < 0.2,
            "FP8 compression {} != ~4x",
            pack.compression()
        );
    }

    #[test]
    fn sparse_packed_unet_runs_and_reports_sparsity() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::fp(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![3.0], &[1]);
        let dense = unet.forward(&x, &t, None);
        for mode in [SparseMode::TwoFour, SparseMode::Csr] {
            let pack = pack_unet_sparse(&unet, &report, mode);
            assert_eq!(pack.layers.len(), report.layers.len(), "{mode:?}: every layer packs");
            // Every layer that went through the mode reports sparsity
            // (2:4-incompatible linears are allowed to skip).
            let with_stats = pack.layers.iter().filter(|l| l.sparsity.is_some()).count();
            assert!(with_stats > 0, "{mode:?}: no layer reported sparsity");
            for l in pack.layers.iter().filter(|l| l.sparsity.is_some()) {
                let s = l.sparsity.unwrap();
                assert!((0.0..=1.0).contains(&s), "{mode:?} {}: sparsity {s}", l.name);
                let e = l.pruning_error.unwrap();
                assert!(e.is_finite() && e >= 0.0, "{mode:?} {}: error {e}", l.name);
                if mode == SparseMode::Csr {
                    assert_eq!(e, 0.0, "CSR must be lossless vs the baked weights");
                }
            }
            let forward = unet.forward(&x, &t, None);
            let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
            if mode == SparseMode::Csr {
                // CSR executes exactly the quantized weights.
                for (a, b) in dense.data().iter().zip(forward.data()) {
                    assert!((a - b).abs() < 1e-3 * scale, "{mode:?}: {a} vs {b}");
                }
            } else {
                // 2:4 pruning perturbs weights; the forward must still be
                // finite and in the same ballpark.
                assert!(forward.data().iter().all(|v| v.is_finite()), "{mode:?}: non-finite");
            }
            unpack_unet(&unet);
            assert_eq!(unet.forward(&x, &t, None).data(), dense.data(), "{mode:?}: unpack");
        }
    }

    #[test]
    fn sparse_mode_parses_cli_spellings() {
        assert_eq!(SparseMode::parse("2:4"), Some(SparseMode::TwoFour));
        assert_eq!(SparseMode::parse("CSR"), Some(SparseMode::Csr));
        assert_eq!(SparseMode::parse("dense"), None);
        assert_eq!(SparseMode::TwoFour.describe(), "2:4");
    }

    #[test]
    fn int_packing_also_streams() {
        let (unet, report, mut rng) = quantized_tiny_unet(PtqConfig::int(8, 8));
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let t = Tensor::from_vec(vec![11.0], &[1]);
        let dense = unet.forward(&x, &t, None);
        let pack = pack_unet(&unet, &report);
        assert!(pack.compression() > 3.5, "INT8 compression {}", pack.compression());
        let packed = unet.forward(&x, &t, None);
        let scale = dense.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (a, b) in dense.data().iter().zip(packed.data()) {
            assert!((a - b).abs() < 1e-3 * scale, "{a} vs {b}");
        }
    }
}
